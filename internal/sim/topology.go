package sim

import (
	"fmt"
	"strings"
)

// Topology describes how ranks are laid out over the machine hierarchy:
// an ordered list of nesting levels (e.g. numa ⊂ socket ⊂ node ⊂ group),
// innermost first, each partitioning the ranks into contiguous groups.
// Groups may hold different numbers of ranks (the paper's Fig. 10
// "irregularly populated nodes" case needs exactly that, and the same
// irregularity is allowed at every level).
//
// Exactly one level is the "node" level: the shared-memory boundary that
// decides window placement, the barrier fast path and flag signalling.
// Levels inside it (numa, socket) refine the on-node cost structure;
// levels outside it (electrical group, cabinet) refine the network.
type Topology struct {
	levels  []level // innermost first
	nodeIdx int     // index of the node level within levels
	total   int
	fp      uint64 // structural fingerprint, computed at build time
}

// level is one materialized nesting level.
type level struct {
	name  string
	class HopClass
	sizes []int // group -> ranks in group
	base  []int // group -> global rank of its first (leader) rank
	group []int // global rank -> group index
	local []int // global rank -> local rank within its group
}

// LevelSpec declares one nesting level for NewHierTopology. Sizes are
// the per-group rank counts in group order; groups are laid out
// contiguously (SMP-style placement, the paper's stated assumption).
// Class zero (HopSelf) selects an automatic class: by name for the
// conventional levels (numa, socket, node, group), otherwise HopShm for
// levels inside the node and HopNet outside it.
type LevelSpec struct {
	Name  string
	Class HopClass
	Sizes []int
}

// NodeLevelName is the reserved level name marking the shared-memory
// boundary.
const NodeLevelName = "node"

// autoClass resolves the default hop class of a named level relative to
// the node level.
func autoClass(name string, insideNode bool) HopClass {
	switch name {
	case "numa":
		return HopNuma
	case "socket":
		return HopSocket
	case NodeLevelName:
		return HopShm
	case "group":
		return HopGroup
	}
	if insideNode {
		return HopShm
	}
	return HopNet
}

// buildLevel materializes the per-rank tables of one level.
func buildLevel(name string, class HopClass, sizes []int) (level, int, error) {
	l := level{
		name:  name,
		class: class,
		sizes: append([]int(nil), sizes...),
		base:  make([]int, len(sizes)),
	}
	total := 0
	for g, sz := range sizes {
		if sz <= 0 {
			return level{}, 0, fmt.Errorf("sim: %s group %d has %d ranks; every group needs at least one", name, g, sz)
		}
		l.base[g] = total
		for local := 0; local < sz; local++ {
			l.group = append(l.group, g)
			l.local = append(l.local, local)
		}
		total += sz
	}
	return l, total, nil
}

// NewHierTopology builds a multi-level topology from level specs ordered
// innermost first (numa before socket before node ...). Exactly one
// level must be named "node". Every level must cover the same rank
// count, and each inner group must nest inside exactly one outer group.
func NewHierTopology(specs []LevelSpec) (*Topology, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("sim: topology needs at least one level")
	}
	nodeIdx := -1
	for i, s := range specs {
		if s.Name == "" {
			return nil, fmt.Errorf("sim: level %d has no name", i)
		}
		if s.Name == NodeLevelName {
			if nodeIdx >= 0 {
				return nil, fmt.Errorf("sim: topology declares two node levels")
			}
			nodeIdx = i
		}
		for j := 0; j < i; j++ {
			if specs[j].Name == s.Name {
				return nil, fmt.Errorf("sim: duplicate level name %q", s.Name)
			}
		}
	}
	if nodeIdx < 0 {
		return nil, fmt.Errorf("sim: topology needs a level named %q", NodeLevelName)
	}

	// Resolve the effective hop classes, then consult the intern cache
	// before materializing any per-rank tables: sweeps rebuild the same
	// handful of shapes for every measured world, and a hit skips the
	// whole build.
	classes := make([]HopClass, len(specs))
	for i, s := range specs {
		classes[i] = s.Class
		if classes[i] == HopSelf {
			classes[i] = autoClass(s.Name, i < nodeIdx)
		}
	}
	if t := lookupInternedTopology(specs, classes); t != nil {
		return t, nil
	}

	t := &Topology{nodeIdx: nodeIdx}
	for i, s := range specs {
		class := classes[i]
		l, total, err := buildLevel(s.Name, class, s.Sizes)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			t.total = total
		} else if total != t.total {
			return nil, fmt.Errorf("sim: level %q covers %d ranks, level %q covers %d",
				s.Name, total, specs[0].Name, t.total)
		}
		t.levels = append(t.levels, l)
	}

	// Nesting: every inner-level group boundary set must contain every
	// outer boundary (an outer group is a union of whole inner groups).
	for i := 1; i < len(t.levels); i++ {
		inner, outer := &t.levels[i-1], &t.levels[i]
		for _, b := range outer.base {
			if inner.local[b] != 0 {
				return nil, fmt.Errorf("sim: level %q group boundary at rank %d splits a %q group",
					outer.name, b, inner.name)
			}
		}
		if len(outer.sizes) > len(inner.sizes) {
			return nil, fmt.Errorf("sim: level %q has more groups (%d) than inner level %q (%d)",
				outer.name, len(outer.sizes), inner.name, len(inner.sizes))
		}
	}
	t.fp = t.fingerprint()
	return internTopology(t), nil
}

// topoIntern holds the canonical instance of each topology shape:
// rebuilding the same shape (as sweeps do for every measured world)
// hands back the shared immutable object instead of fresh per-rank
// tables, and downstream geometry caches hit their pointer-equality
// fast path.
var topoIntern = NewShapeCache[*Topology](256)

func internTopology(t *Topology) *Topology {
	v, _ := topoIntern.GetOrBuild(t.fp, t.EqualStructure, func() (*Topology, error) { return t, nil })
	return v
}

// lookupInternedTopology checks the intern cache against raw specs
// (with resolved classes) so a hit avoids building the per-rank tables
// at all. Only valid topologies are interned, and a spec that matches
// one level-for-level is necessarily valid itself.
func lookupInternedTopology(specs []LevelSpec, classes []HopClass) *Topology {
	h := HashSeed
	for i, s := range specs {
		h = hashLevelInto(h, s.Name, classes[i], s.Sizes)
	}
	t, ok := topoIntern.Lookup(h, func(o *Topology) bool {
		if len(o.levels) != len(specs) {
			return false
		}
		for i := range specs {
			l := &o.levels[i]
			if l.name != specs[i].Name || l.class != classes[i] || len(l.sizes) != len(specs[i].Sizes) {
				return false
			}
			for g, sz := range specs[i].Sizes {
				if l.sizes[g] != sz {
					return false
				}
			}
		}
		return true
	})
	if !ok {
		return nil
	}
	return t
}

// hashLevelInto folds one level's identity (name, class, group sizes)
// into a running hash. Both the built-topology fingerprint and the
// spec-side intern lookup go through this single mixer — they must stay
// byte-identical, or interning silently stops hitting and every world
// builds duplicate canonical topologies.
func hashLevelInto(h uint64, name string, class HopClass, sizes []int) uint64 {
	mix := func(v uint64) uint64 {
		return (h ^ v) * 1099511628211
	}
	for _, c := range []byte(name) {
		h = mix(uint64(c))
	}
	h = mix(uint64(class) + 1)
	for _, sz := range sizes {
		h = mix(uint64(sz))
	}
	return mix(0xfe) // level separator
}

// fingerprint hashes the structure (level names, classes, group sizes)
// with FNV-1a. Topologies are immutable after construction, so the
// value is computed once. Two topologies with equal structure describe
// identical rank layouts — the per-rank tables are derived from the
// sizes deterministically — which is what lets worlds of the same shape
// share cached communicator geometry (see internal/mpi, internal/coll).
func (t *Topology) fingerprint() uint64 {
	h := HashSeed
	for i := range t.levels {
		l := &t.levels[i]
		h = hashLevelInto(h, l.name, l.class, l.sizes)
	}
	return h
}

// Fingerprint returns the topology's structural hash. Use
// EqualStructure to confirm a match exactly: the fingerprint only
// selects cache buckets.
func (t *Topology) Fingerprint() uint64 { return t.fp }

// EqualStructure reports whether two topologies declare the same level
// stack (names, hop classes and per-group rank counts, in order) and
// therefore lay ranks out identically.
func (t *Topology) EqualStructure(o *Topology) bool {
	if t == o {
		return true
	}
	if o == nil || len(t.levels) != len(o.levels) || t.total != o.total || t.nodeIdx != o.nodeIdx {
		return false
	}
	for i := range t.levels {
		a, b := &t.levels[i], &o.levels[i]
		if a.name != b.name || a.class != b.class || len(a.sizes) != len(b.sizes) {
			return false
		}
		for g := range a.sizes {
			if a.sizes[g] != b.sizes[g] {
				return false
			}
		}
	}
	return true
}

// NewTopology builds a single-level (node-only) topology from the number
// of ranks on each node, with SMP-style placement: ranks
// 0..nodeSizes[0]-1 on node 0, and so on. This matches the paper's
// default rank placement assumption (Sect. 4); other placements are
// layered on top by internal/hybrid using the node-sorted global rank
// array technique from Sect. 6.
func NewTopology(nodeSizes []int) (*Topology, error) {
	if len(nodeSizes) == 0 {
		return nil, fmt.Errorf("sim: topology needs at least one node")
	}
	return NewHierTopology([]LevelSpec{{Name: NodeLevelName, Sizes: nodeSizes}})
}

// LevelDim sizes one uniform level for UniformHier: Arity groups of this
// level per group of the next (outer) level; the outermost level's Arity
// is its total group count.
type LevelDim struct {
	Name  string
	Arity int
}

// UniformHier builds a regular multi-level topology: perLeaf ranks per
// innermost group, with dims ordered innermost first. For example
//
//	UniformHier(6, LevelDim{"socket", 2}, LevelDim{"node", 4})
//
// is 4 nodes of 2 sockets of 6 ranks (48 ranks).
func UniformHier(perLeaf int, dims ...LevelDim) (*Topology, error) {
	if perLeaf <= 0 || len(dims) == 0 {
		return nil, fmt.Errorf("sim: uniform hierarchy needs perLeaf>0 and at least one level")
	}
	specs := make([]LevelSpec, len(dims))
	ranksPer := perLeaf
	for _, d := range dims {
		if d.Arity <= 0 {
			return nil, fmt.Errorf("sim: level %q needs arity>0, got %d", d.Name, d.Arity)
		}
	}
	for i, d := range dims {
		// Level i has arity_i * arity_{i+1} * ... groups of ranksPer ranks.
		cnt := d.Arity
		for _, o := range dims[i+1:] {
			cnt *= o.Arity
		}
		sizes := make([]int, cnt)
		for g := range sizes {
			sizes[g] = ranksPer
		}
		specs[i] = LevelSpec{Name: d.Name, Sizes: sizes}
		ranksPer *= d.Arity
	}
	return NewHierTopology(specs)
}

// Uniform builds a regular single-level topology of nodes*ppn ranks.
func Uniform(nodes, ppn int) (*Topology, error) {
	if nodes <= 0 || ppn <= 0 {
		return nil, fmt.Errorf("sim: uniform topology needs nodes>0 and ppn>0, got %d x %d", nodes, ppn)
	}
	sizes := make([]int, nodes)
	for i := range sizes {
		sizes[i] = ppn
	}
	return NewTopology(sizes)
}

// MustUniform is Uniform for static configurations known to be valid.
func MustUniform(nodes, ppn int) *Topology {
	t, err := Uniform(nodes, ppn)
	if err != nil {
		panic(err)
	}
	return t
}

// MustUniformHier is UniformHier for static configurations known to be
// valid.
func MustUniformHier(perLeaf int, dims ...LevelDim) *Topology {
	t, err := UniformHier(perLeaf, dims...)
	if err != nil {
		panic(err)
	}
	return t
}

// Size returns the total number of ranks.
func (t *Topology) Size() int { return t.total }

// NumLevels returns the number of declared nesting levels.
func (t *Topology) NumLevels() int { return len(t.levels) }

// NodeLevel returns the index of the node (shared-memory) level.
func (t *Topology) NodeLevel() int { return t.nodeIdx }

// LevelName returns the name of level l.
func (t *Topology) LevelName(l int) string { return t.levels[l].name }

// LevelClass returns the hop class charged for traffic whose innermost
// common container is level l.
func (t *Topology) LevelClass(l int) HopClass { return t.levels[l].class }

// LevelIndex resolves a level name to its index (innermost first).
func (t *Topology) LevelIndex(name string) (int, bool) {
	for i := range t.levels {
		if t.levels[i].name == name {
			return i, true
		}
	}
	return 0, false
}

// Groups returns the number of groups at level l.
func (t *Topology) Groups(l int) int { return len(t.levels[l].sizes) }

// GroupOf returns the level-l group hosting a global rank.
func (t *Topology) GroupOf(l, rank int) int { return t.levels[l].group[rank] }

// GroupSize returns the number of ranks in level-l group g.
func (t *Topology) GroupSize(l, g int) int { return t.levels[l].sizes[g] }

// GroupLeader returns the global rank of the lowest-ranked process in
// level-l group g — the leader convention at every level.
func (t *Topology) GroupLeader(l, g int) int { return t.levels[l].base[g] }

// LocalAt returns a rank's local index within its level-l group.
func (t *Topology) LocalAt(l, rank int) int { return t.levels[l].local[rank] }

// Nodes returns the number of nodes.
func (t *Topology) Nodes() int { return len(t.levels[t.nodeIdx].sizes) }

// NodeSize returns the number of ranks on node n.
func (t *Topology) NodeSize(n int) int { return t.levels[t.nodeIdx].sizes[n] }

// NodeOf returns the node index hosting a global rank.
func (t *Topology) NodeOf(rank int) int { return t.levels[t.nodeIdx].group[rank] }

// LocalRank returns the on-node rank of a global rank.
func (t *Topology) LocalRank(rank int) int { return t.levels[t.nodeIdx].local[rank] }

// NodeLeader returns the global rank of the lowest-ranked process on
// node n — the paper's leader convention.
func (t *Topology) NodeLeader(n int) int { return t.levels[t.nodeIdx].base[n] }

// SameNode reports whether two global ranks share a node — the
// shared-memory reachability test used by windows and flag signalling.
func (t *Topology) SameNode(a, b int) bool {
	return t.levels[t.nodeIdx].group[a] == t.levels[t.nodeIdx].group[b]
}

// Hop classifies the path between two global ranks: the class of the
// innermost level containing both, HopNet when they share no declared
// level. With only the node level declared this is exactly the
// historical shm/net split.
func (t *Topology) Hop(a, b int) HopClass {
	if a == b {
		return HopSelf
	}
	for i := range t.levels {
		if t.levels[i].group[a] == t.levels[i].group[b] {
			return t.levels[i].class
		}
	}
	return HopNet
}

// FoldUnit returns the rank-translation period of a homogeneous
// topology: the smallest u such that shifting every rank by u maps the
// hierarchy onto itself — the number of ranks per outermost-level
// group. Rank-symmetry folding (internal/mpi) uses it to collapse a
// translational workload to one representative per residue class
// mod u. It returns 0 when any level's groups differ in size (the
// irregularly-populated case, where no translation symmetry exists and
// folding must stay off). Nesting uniformity follows: uniform group
// sizes at every level of a validated nested hierarchy imply a uniform
// child count per group.
func (t *Topology) FoldUnit() int {
	for i := range t.levels {
		sizes := t.levels[i].sizes
		for _, sz := range sizes[1:] {
			if sz != sizes[0] {
				return 0
			}
		}
	}
	return t.levels[len(t.levels)-1].sizes[0]
}

// MaxNodeSize returns the largest per-node rank count.
func (t *Topology) MaxNodeSize() int {
	max := 0
	for _, sz := range t.levels[t.nodeIdx].sizes {
		if sz > max {
			max = sz
		}
	}
	return max
}

// String summarizes the topology, e.g. "64x24", "3 nodes [24 24 16]",
// or "2x12 (socket⊂node)" for multi-level stacks.
func (t *Topology) String() string {
	node := &t.levels[t.nodeIdx]
	uniform := true
	for _, sz := range node.sizes {
		if sz != node.sizes[0] {
			uniform = false
			break
		}
	}
	var base string
	if uniform {
		base = fmt.Sprintf("%dx%d", len(node.sizes), node.sizes[0])
	} else {
		base = fmt.Sprintf("%d nodes %v", len(node.sizes), node.sizes)
	}
	if len(t.levels) == 1 {
		return base
	}
	names := make([]string, len(t.levels))
	for i := range t.levels {
		names[i] = t.levels[i].name
	}
	return fmt.Sprintf("%s (%s)", base, strings.Join(names, "⊂"))
}
