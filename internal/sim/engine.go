package sim

import "fmt"

// Engine selects the execution backend a simulated world runs its ranks
// on. Both backends produce bit-identical virtual times: the clock
// semantics live entirely in the message/coordination records, and any
// valid execution order yields the same timestamps. What differs is the
// host-side cost profile.
type Engine int

const (
	// EngineGoroutine is the parallel backend: one long-lived goroutine
	// per rank, parked on mailboxes between runs (the scale-out engine
	// of the 100k-rank sweeps). It exploits host cores but pays per-rank
	// stacks and scheduler traffic.
	EngineGoroutine Engine = iota
	// EngineEvent is the discrete-event backend: a cooperative
	// single-threaded scheduler that runs exactly one ready rank at a
	// time, handing control off through an event (ready) queue instead
	// of parking ranks on the host scheduler. It trades parallelism for
	// determinism of execution order, zero lock contention, and — when
	// combined with rank-symmetry folding — per-rank state proportional
	// to the number of *distinct* rank behaviors rather than the rank
	// count, which is what makes million-rank worlds affordable.
	EngineEvent
)

// String names the engine as accepted by ParseEngine.
func (e Engine) String() string {
	switch e {
	case EngineGoroutine:
		return "goroutine"
	case EngineEvent:
		return "event"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ParseEngine is the inverse of String.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "goroutine":
		return EngineGoroutine, nil
	case "event":
		return EngineEvent, nil
	}
	return 0, fmt.Errorf("sim: unknown engine %q (want goroutine or event)", s)
}
