package sim

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Event is one recorded simulator event (a message, copy, or phase
// marker). Tracing is optional and off by default; the experiment
// harness enables it with -trace for debugging cost-model behaviour.
type Event struct {
	At    Time   // virtual time at which the event completed
	Rank  int    // global rank that recorded the event
	Kind  string // "send", "recv", "copy", "compute", "phase", ...
	Bytes int
	Note  string
}

// Tracer collects events from concurrently running rank goroutines.
// The zero value discards everything; NewTracer returns a recording one.
type Tracer struct {
	mu     sync.Mutex
	events []Event
	on     bool
}

// NewTracer returns a recording tracer.
func NewTracer() *Tracer { return &Tracer{on: true} }

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil && t.on }

// Record appends an event. Safe for concurrent use; a nil or disabled
// tracer is a no-op, so hot paths can call it unconditionally.
func (t *Tracer) Record(e Event) {
	if t == nil || !t.on {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns a copy of the recorded events sorted by virtual time
// (ties broken by rank, then insertion order is preserved by stable
// sort).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Event(nil), t.events...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// Reset discards recorded events.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = t.events[:0]
	t.mu.Unlock()
}

// Dump writes a human-readable listing of the trace to w.
func (t *Tracer) Dump(w io.Writer) error {
	for _, e := range t.Events() {
		if _, err := fmt.Fprintf(w, "%12s rank=%-5d %-8s %8dB %s\n", e.At, e.Rank, e.Kind, e.Bytes, e.Note); err != nil {
			return err
		}
	}
	return nil
}
