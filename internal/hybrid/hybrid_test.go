package hybrid

import (
	"fmt"
	"testing"

	"repro/internal/coll"
	"repro/internal/mpi"
	"repro/internal/sim"
)

func runWorld(t *testing.T, nodeSizes []int, body func(p *mpi.Proc) error) *mpi.World {
	t.Helper()
	topo, err := sim.NewTopology(nodeSizes)
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(sim.Laptop(), topo, mpi.WithRealData())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(body); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestCtxStructure(t *testing.T) {
	runWorld(t, []int{3, 2}, func(p *mpi.Proc) error {
		ctx, err := New(p.CommWorld())
		if err != nil {
			return err
		}
		if ctx.Nodes() != 2 {
			t.Errorf("nodes = %d", ctx.Nodes())
		}
		if !ctx.SMPPlacement() {
			t.Error("world comm should be SMP placement")
		}
		wantLeader := p.Rank() == 0 || p.Rank() == 3
		if ctx.IsLeader() != wantLeader {
			t.Errorf("rank %d IsLeader = %v", p.Rank(), ctx.IsLeader())
		}
		if wantLeader && ctx.Bridge() == nil {
			t.Error("leader missing bridge")
		}
		if !wantLeader && ctx.Bridge() != nil {
			t.Error("child has bridge")
		}
		for r := 0; r < 5; r++ {
			if ctx.SlotOf(r) != r || ctx.RankAt(r) != r {
				t.Errorf("SMP slot mapping not identity at %d", r)
			}
		}
		if got := ctx.NodeSizes(); got[0] != 3 || got[1] != 2 {
			t.Errorf("node sizes = %v", got)
		}
		if ctx.Comm() == nil || ctx.Node() == nil {
			t.Error("accessors returned nil")
		}
		return nil
	})
}

func TestSyncModeString(t *testing.T) {
	if SyncBarrier.String() != "barrier" || SyncP2P.String() != "p2p" || SyncSharedFlags.String() != "sharedflags" {
		t.Error("sync mode names wrong")
	}
	if SyncMode(9).String() == "" {
		t.Error("unknown sync mode empty")
	}
}

func checkAllgatherResult(t *testing.T, a *Allgatherer, p *mpi.Proc, size, elems int) {
	t.Helper()
	for r := 0; r < size; r++ {
		blk := a.Block(r)
		for i := 0; i < elems; i += 1 + elems/3 {
			want := float64(r*1_000_000 + i)
			if got := blk.Float64At(i); got != want {
				t.Errorf("rank %d sees block %d elem %d = %v, want %v", p.Rank(), r, i, got, want)
				return
			}
		}
	}
}

func TestHyAllgatherAllSyncModes(t *testing.T) {
	for _, mode := range []SyncMode{SyncBarrier, SyncP2P, SyncSharedFlags} {
		for _, shape := range [][]int{{4}, {2, 2}, {3, 3, 3}, {4, 4, 2}} {
			t.Run(fmt.Sprintf("%v/%v", mode, shape), func(t *testing.T) {
				n := 0
				for _, s := range shape {
					n += s
				}
				const elems = 13
				runWorld(t, shape, func(p *mpi.Proc) error {
					ctx, err := New(p.CommWorld(), WithSync(mode))
					if err != nil {
						return err
					}
					a, err := ctx.NewAllgatherer(8 * elems)
					if err != nil {
						return err
					}
					// Fig. 4 line 22: initialize my partition
					// directly in the shared buffer.
					mine := a.Mine()
					for i := 0; i < elems; i++ {
						mine.PutFloat64(i, float64(p.Rank()*1_000_000+i))
					}
					if err := a.Allgather(); err != nil {
						return err
					}
					checkAllgatherResult(t, a, p, n, elems)
					return nil
				})
			})
		}
	}
}

func TestHyAllgatherRepeatedCalls(t *testing.T) {
	// The window is allocated once and the operation repeats — the
	// amortization story of Sect. 4.1.
	runWorld(t, []int{2, 2}, func(p *mpi.Proc) error {
		ctx, err := New(p.CommWorld())
		if err != nil {
			return err
		}
		a, err := ctx.NewAllgatherer(8)
		if err != nil {
			return err
		}
		for iter := 0; iter < 5; iter++ {
			a.Mine().PutFloat64(0, float64(100*iter+p.Rank()))
			if err := a.Allgather(); err != nil {
				return err
			}
			var bad string
			for r := 0; r < 4; r++ {
				if got := a.Block(r).Float64At(0); got != float64(100*iter+r) {
					bad = fmt.Sprintf("iter %d block %d = %v", iter, r, got)
					break
				}
			}
			// Finish reading before the next iteration's write —
			// the epoch discipline iterative callers must follow.
			if err := a.ReadFence(); err != nil {
				return err
			}
			if bad != "" {
				return fmt.Errorf("stale read: %s", bad)
			}
		}
		return nil
	})
}

func TestHyAllgathererV(t *testing.T) {
	// Irregular per-rank contributions, including zero.
	counts := []int{24, 0, 8, 16, 8}
	runWorld(t, []int{3, 2}, func(p *mpi.Proc) error {
		ctx, err := New(p.CommWorld())
		if err != nil {
			return err
		}
		a, err := ctx.NewAllgathererV(counts)
		if err != nil {
			return err
		}
		mine := a.Mine()
		if mine.Len() != counts[p.Rank()] {
			t.Errorf("rank %d Mine() length %d, want %d", p.Rank(), mine.Len(), counts[p.Rank()])
		}
		for i := 0; i < counts[p.Rank()]/8; i++ {
			mine.PutFloat64(i, float64(p.Rank()*10+i))
		}
		if err := a.Allgather(); err != nil {
			return err
		}
		for r := 0; r < 5; r++ {
			blk := a.Block(r)
			for i := 0; i < counts[r]/8; i++ {
				if got := blk.Float64At(i); got != float64(r*10+i) {
					t.Errorf("block %d elem %d = %v", r, i, got)
				}
			}
		}
		return nil
	})
}

func TestHyAllgatherNonSMPPlacement(t *testing.T) {
	// Round-robin placement: comm rank order alternates nodes, so the
	// node-sorted rank array must kick in (paper Sect. 6).
	runWorld(t, []int{2, 2}, func(p *mpi.Proc) error {
		// world ranks 0,1 on node 0; 2,3 on node 1.
		// Build a comm ordered 0,2,1,3 (round-robin across nodes).
		key := map[int]int{0: 0, 2: 1, 1: 2, 3: 3}[p.Rank()]
		rr, err := p.CommWorld().Split(0, key)
		if err != nil {
			return err
		}
		ctx, err := New(rr)
		if err != nil {
			return err
		}
		if ctx.SMPPlacement() {
			t.Error("round-robin comm misdetected as SMP")
		}
		a, err := ctx.NewAllgatherer(8)
		if err != nil {
			return err
		}
		a.Mine().PutFloat64(0, float64(1000+rr.Rank()))
		if err := a.Allgather(); err != nil {
			return err
		}
		for r := 0; r < 4; r++ {
			if got := a.Block(r).Float64At(0); got != float64(1000+r) {
				t.Errorf("comm rank %d block %d = %v", rr.Rank(), r, got)
			}
		}
		return nil
	})
}

func TestHyAllgatherPipelined(t *testing.T) {
	// Chunked bridge exchange must stay correct...
	const elems = 512
	runWorld(t, []int{2, 2, 2}, func(p *mpi.Proc) error {
		ctx, err := New(p.CommWorld())
		if err != nil {
			return err
		}
		a, err := ctx.NewAllgatherer(8*elems, WithPipelineChunk(1024))
		if err != nil {
			return err
		}
		mine := a.Mine()
		for i := 0; i < elems; i++ {
			mine.PutFloat64(i, float64(p.Rank()*1_000_000+i))
		}
		if err := a.Allgather(); err != nil {
			return err
		}
		checkAllgatherResult(t, a, p, 6, elems)
		return nil
	})
}

func TestHyAllgatherPipelineOverheadBounded(t *testing.T) {
	// A ring exchange is already fully pipelined at block
	// granularity, so chunking cannot beat it under a LogGP model —
	// it can only add per-chunk latency. This ablation (recorded in
	// EXPERIMENTS.md) locks in that the overhead stays small, which
	// is what makes the chunked path an acceptable default for
	// memory-bounded staging even where it cannot win time.
	latency := func(chunk int) sim.Time {
		topo, _ := sim.NewTopology([]int{4, 4, 4, 4, 4, 4, 4, 4})
		w, err := mpi.NewWorld(sim.HazelHenCray(), topo)
		if err != nil {
			t.Fatal(err)
		}
		err = w.Run(func(p *mpi.Proc) error {
			ctx, err := New(p.CommWorld())
			if err != nil {
				return err
			}
			var opts []AllgatherOption
			if chunk > 0 {
				opts = append(opts, WithPipelineChunk(chunk))
			}
			a, err := ctx.NewAllgatherer(512<<10, opts...)
			if err != nil {
				return err
			}
			return a.Allgather()
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.MaxClock()
	}
	plain := latency(0)
	piped := latency(128 << 10)
	if piped < plain {
		t.Logf("pipelined exchange unexpectedly faster: %v vs %v", piped, plain)
	}
	if piped > plain+plain/4 {
		t.Errorf("pipelined exchange overhead too high: %v vs plain %v", piped, plain)
	}
}

func TestHyBcast(t *testing.T) {
	for _, mode := range []SyncMode{SyncBarrier, SyncP2P, SyncSharedFlags} {
		for _, root := range []int{0, 1, 4} {
			t.Run(fmt.Sprintf("%v/root%d", mode, root), func(t *testing.T) {
				const elems = 21
				runWorld(t, []int{3, 3}, func(p *mpi.Proc) error {
					ctx, err := New(p.CommWorld(), WithSync(mode))
					if err != nil {
						return err
					}
					b, err := ctx.NewBcaster(8 * elems)
					if err != nil {
						return err
					}
					if p.Rank() == root {
						buf := b.Buffer()
						for i := 0; i < elems; i++ {
							buf.PutFloat64(i, float64(root*1_000_000+i))
						}
					}
					if err := b.Bcast(root); err != nil {
						return err
					}
					for i := 0; i < elems; i++ {
						want := float64(root*1_000_000 + i)
						if got := b.Buffer().Float64At(i); got != want {
							t.Errorf("rank %d elem %d = %v, want %v", p.Rank(), i, got, want)
							return nil
						}
					}
					return nil
				})
			})
		}
	}
}

func TestHyBcastSingleNode(t *testing.T) {
	runWorld(t, []int{4}, func(p *mpi.Proc) error {
		ctx, err := New(p.CommWorld())
		if err != nil {
			return err
		}
		b, err := ctx.NewBcaster(8)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			b.Buffer().PutFloat64(0, 77)
		}
		if err := b.Bcast(0); err != nil {
			return err
		}
		if got := b.Buffer().Float64At(0); got != 77 {
			t.Errorf("rank %d got %v", p.Rank(), got)
		}
		return nil
	})
}

func TestHyAllreduce(t *testing.T) {
	for _, shape := range [][]int{{4}, {3, 3}, {2, 2, 2}} {
		t.Run(fmt.Sprint(shape), func(t *testing.T) {
			n := 0
			for _, s := range shape {
				n += s
			}
			const elems = 6
			runWorld(t, shape, func(p *mpi.Proc) error {
				ctx, err := New(p.CommWorld())
				if err != nil {
					return err
				}
				a, err := ctx.NewAllreducer(elems, mpi.Float64)
				if err != nil {
					return err
				}
				mine := a.Mine()
				for i := 0; i < elems; i++ {
					mine.PutFloat64(i, float64(p.Rank()+i))
				}
				if err := a.Allreduce(mpi.OpSum); err != nil {
					return err
				}
				for i := 0; i < elems; i++ {
					want := float64(n*i + n*(n-1)/2)
					if got := a.Result().Float64At(i); got != want {
						t.Errorf("rank %d elem %d = %v, want %v", p.Rank(), i, got, want)
						return nil
					}
				}
				return nil
			})
		})
	}
}

func TestValidation(t *testing.T) {
	runWorld(t, []int{2}, func(p *mpi.Proc) error {
		if _, err := New(nil); err == nil {
			t.Error("nil comm accepted")
		}
		ctx, err := New(p.CommWorld())
		if err != nil {
			return err
		}
		if _, err := ctx.NewAllgatherer(-1); err == nil {
			t.Error("negative size accepted")
		}
		if _, err := ctx.NewAllgathererV([]int{8}); err == nil {
			t.Error("short count vector accepted")
		}
		if _, err := ctx.NewAllgathererV([]int{8, -8}); err == nil {
			t.Error("negative count accepted")
		}
		if _, err := ctx.NewBcaster(-1); err == nil {
			t.Error("negative bcast size accepted")
		}
		if _, err := ctx.NewAllreducer(-1, mpi.Float64); err == nil {
			t.Error("negative allreduce count accepted")
		}
		b, err := ctx.NewBcaster(8)
		if err != nil {
			return err
		}
		if err := b.Bcast(99); err == nil {
			t.Error("bad bcast root accepted")
		}
		return nil
	})
}

// Timing-shape assertions for the core claims.

func hyVsPureLatency(t *testing.T, model *sim.CostModel, shape []int, elems int) (hy, pure sim.Time) {
	t.Helper()
	topo, err := sim.NewTopology(shape)
	if err != nil {
		t.Fatal(err)
	}
	per := 8 * elems
	n := topo.Size()

	w, err := mpi.NewWorld(model, topo)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(p *mpi.Proc) error {
		ctx, err := New(p.CommWorld())
		if err != nil {
			return err
		}
		a, err := ctx.NewAllgatherer(per)
		if err != nil {
			return err
		}
		return a.Allgather()
	}); err != nil {
		t.Fatal(err)
	}
	hy = w.MaxClock()

	w2, err := mpi.NewWorld(model, topo)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Run(func(p *mpi.Proc) error {
		h, err := coll.NewHier(p.CommWorld())
		if err != nil {
			return err
		}
		return h.Allgather(mpi.Sized(per), mpi.Sized(per*n), per)
	}); err != nil {
		t.Fatal(err)
	}
	pure = w2.MaxClock()
	return hy, pure
}

func TestSingleNodeHybridFlatAndFaster(t *testing.T) {
	// Fig. 7's two claims: hybrid cost is ~constant in message size
	// (one barrier) and always below the pure-MPI allgather.
	model := sim.HazelHenCray()
	hySmall, pureSmall := hyVsPureLatency(t, model, []int{24}, 1)
	hyBig, pureBig := hyVsPureLatency(t, model, []int{24}, 32768)
	if hySmall >= pureSmall || hyBig >= pureBig {
		t.Errorf("hybrid should win on one node: small %v vs %v, big %v vs %v",
			hySmall, pureSmall, hyBig, pureBig)
	}
	// "Almost constant": allow only tiny drift across a 32768x size
	// range.
	if hyBig > hySmall*2 {
		t.Errorf("hybrid single-node latency not flat: %v -> %v", hySmall, hyBig)
	}
	if pureBig < pureSmall*10 {
		t.Errorf("pure MPI single-node latency should grow strongly: %v -> %v", pureSmall, pureBig)
	}
}

func TestOneRankPerNodeHybridSlightlyWorse(t *testing.T) {
	// Fig. 8's claim: with one rank per node the hybrid approach
	// degenerates to MPI_Allgatherv and loses slightly.
	model := sim.VulcanOpenMPI()
	shape := make([]int, 16)
	for i := range shape {
		shape[i] = 1
	}
	hy, pure := hyVsPureLatency(t, model, shape, 64)
	if hy <= pure {
		t.Errorf("one rank/node: hybrid (%v) should be slightly slower than pure (%v)", hy, pure)
	}
	if hy > pure*3 {
		t.Errorf("one rank/node: hybrid (%v) should be only slightly slower than pure (%v)", hy, pure)
	}
}

func TestManyRanksPerNodeHybridWins(t *testing.T) {
	// Fig. 9's claim: at high ppn the hybrid approach wins clearly.
	model := sim.HazelHenCray()
	shape := make([]int, 8)
	for i := range shape {
		shape[i] = 24
	}
	hy, pure := hyVsPureLatency(t, model, shape, 512)
	if hy >= pure {
		t.Errorf("24 ppn: hybrid (%v) should beat pure (%v)", hy, pure)
	}
}

func TestSyncFlavorOrdering(t *testing.T) {
	// Shared flags must be the cheapest synchronization, barrier the
	// most expensive (ablation backing Sect. 6/7 remarks).
	topoShape := []int{24}
	cost := func(mode SyncMode) sim.Time {
		topo, _ := sim.NewTopology(topoShape)
		w, err := mpi.NewWorld(sim.HazelHenCray(), topo)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(func(p *mpi.Proc) error {
			ctx, err := New(p.CommWorld(), WithSync(mode))
			if err != nil {
				return err
			}
			a, err := ctx.NewAllgatherer(8)
			if err != nil {
				return err
			}
			for i := 0; i < 10; i++ {
				if err := a.Allgather(); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return w.MaxClock()
	}
	barrier := cost(SyncBarrier)
	flags := cost(SyncSharedFlags)
	if flags >= barrier {
		t.Errorf("shared flags (%v) should undercut the barrier (%v)", flags, barrier)
	}
}

func TestHybridDeterministic(t *testing.T) {
	run := func() sim.Time {
		topo, _ := sim.NewTopology([]int{6, 6, 6, 6})
		w, err := mpi.NewWorld(sim.VulcanOpenMPI(), topo)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(func(p *mpi.Proc) error {
			ctx, err := New(p.CommWorld())
			if err != nil {
				return err
			}
			a, err := ctx.NewAllgatherer(4096)
			if err != nil {
				return err
			}
			for i := 0; i < 4; i++ {
				if err := a.Allgather(); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return w.MaxClock()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("hybrid latency nondeterministic: %v vs %v", a, b)
	}
}
