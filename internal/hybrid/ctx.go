// Package hybrid implements the paper's contribution: MPI collective
// operations for the hybrid MPI+MPI programming model. Each node keeps
// exactly one copy of replicated data in an MPI-3 shared-memory window;
// only the per-node leader takes part in the inter-node exchange over
// the bridge communicator; the other on-node ranks ("children") access
// the shared segment directly and synchronize with the leader around the
// exchange (Figs. 4 and 6 of the paper).
package hybrid

import (
	"fmt"
	"sort"

	"repro/internal/coll"
	"repro/internal/mpi"
)

// SyncMode selects how on-node ranks synchronize around the bridge
// exchange (paper Sect. 6 "Explicit synchronization").
type SyncMode int

const (
	// SyncBarrier is the paper's scheme: an MPI barrier over the
	// shared-memory communicator before and after the exchange.
	SyncBarrier SyncMode = iota
	// SyncP2P replaces each barrier with pairwise zero-byte flag
	// messages between children and the leader (the "light-weight
	// means").
	SyncP2P
	// SyncSharedFlags signals through per-rank epoch counters stored
	// in the shared segment itself ([8]); the cheapest flavor.
	SyncSharedFlags
)

// String names the sync mode.
func (s SyncMode) String() string {
	switch s {
	case SyncBarrier:
		return "barrier"
	case SyncP2P:
		return "p2p"
	case SyncSharedFlags:
		return "sharedflags"
	default:
		return fmt.Sprintf("SyncMode(%d)", int(s))
	}
}

// Ctx is one rank's handle on the hybrid MPI+MPI context built over a
// communicator: the shared-memory and bridge communicators plus the
// node-sorted global rank array that supports rank placements other
// than SMP-style (paper Sect. 6 "Rank placement").
type Ctx struct {
	comm   *mpi.Comm
	node   *mpi.Comm
	bridge *mpi.Comm // nil on children

	sync SyncMode

	// Node-sorted rank array: slot s holds the comm rank stored at
	// position s of every node-gathered buffer. Nodes appear in
	// bridge order; ranks within a node in node-comm order. Under
	// SMP placement slotToRank is the identity.
	slotToRank []int
	rankToSlot []int
	nodeSizes  []int // bridge order
	nodeFirst  []int // first slot of each node
	myNodeIdx  int
	smp        bool

	collTuning *coll.Tuning
}

// Option configures a Ctx.
type Option func(*Ctx)

// WithSync selects the synchronization flavor (default SyncBarrier, as
// in the paper).
func WithSync(m SyncMode) Option { return func(c *Ctx) { c.sync = m } }

// WithCollTuning routes every collective the hybrid context issues —
// the bridge exchanges of its leaders in particular — through the
// given selection-engine tuning. Without it the context inherits
// whatever tuning the parent communicator (or world) carries.
func WithCollTuning(t coll.Tuning) Option { return func(c *Ctx) { c.collTuning = &t } }

// ctxPlan is the node-sorted rank geometry of one hybrid context,
// computed once by comm rank 0 and shared read-only by every member.
type ctxPlan struct {
	slotToRank []int
	rankToSlot []int
	nodeSizes  []int
	nodeFirst  []int
	smp        bool
}

type ctxEntry struct{ commRank, leaderCommRank, nodeRank int }

func buildCtxPlan(vals []any) *ctxPlan {
	entries := make([]ctxEntry, len(vals))
	for i, v := range vals {
		entries[i] = v.(ctxEntry)
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].leaderCommRank != entries[j].leaderCommRank {
			return entries[i].leaderCommRank < entries[j].leaderCommRank
		}
		return entries[i].nodeRank < entries[j].nodeRank
	})

	plan := &ctxPlan{
		slotToRank: make([]int, len(entries)),
		rankToSlot: make([]int, len(entries)),
		smp:        true,
	}
	lastLeader := -1
	for s, e := range entries {
		plan.slotToRank[s] = e.commRank
		plan.rankToSlot[e.commRank] = s
		if e.commRank != s {
			plan.smp = false
		}
		if e.leaderCommRank != lastLeader {
			plan.nodeFirst = append(plan.nodeFirst, s)
			plan.nodeSizes = append(plan.nodeSizes, 0)
			lastLeader = e.leaderCommRank
		}
		plan.nodeSizes[len(plan.nodeSizes)-1]++
	}
	return plan
}

// New builds the hybrid context over a communicator: the two-level
// communicator split of Fig. 4 lines 2-10 plus the node-sorted rank
// array. Construction is untimed one-off setup; rank 0 computes the
// geometry once and publishes it, so per-member work stays O(1).
func New(comm *mpi.Comm, opts ...Option) (*Ctx, error) {
	if comm == nil {
		return nil, fmt.Errorf("hybrid: New on nil communicator")
	}
	ctx := &Ctx{comm: comm}
	for _, o := range opts {
		o(ctx)
	}
	node, err := comm.SplitTypeShared()
	if err != nil {
		return nil, err
	}
	bridge, err := comm.SplitBridge(node)
	if err != nil {
		return nil, err
	}
	if ctx.collTuning != nil {
		// Attach to the context's own communicators only: the caller's
		// handle keeps whatever tuning it already carries.
		node.SetCollConfig(*ctx.collTuning)
		if bridge != nil {
			bridge.SetCollConfig(*ctx.collTuning)
		}
	}
	ctx.node, ctx.bridge = node, bridge

	// Build the node-sorted global rank array: every rank announces
	// (its comm rank, its node group identified by the leader's comm
	// rank, its on-node rank). Each member learns its leader's comm
	// rank through the node communicator first.
	leaderVals := node.Setup(comm.Rank())
	myLeaderCommRank := leaderVals[0].(int)
	plan, err := mpi.SharePlan(comm,
		ctxEntry{commRank: comm.Rank(), leaderCommRank: myLeaderCommRank, nodeRank: node.Rank()},
		buildCtxPlan)
	if err != nil {
		return nil, fmt.Errorf("hybrid: context plan missing: %w", err)
	}
	ctx.slotToRank = plan.slotToRank
	ctx.rankToSlot = plan.rankToSlot
	ctx.nodeSizes = plan.nodeSizes
	ctx.nodeFirst = plan.nodeFirst
	ctx.smp = plan.smp
	// My node is the block containing my slot.
	slot := ctx.rankToSlot[comm.Rank()]
	ctx.myNodeIdx = sort.SearchInts(ctx.nodeFirst, slot+1) - 1
	return ctx, nil
}

// Comm returns the communicator the context was built over.
func (c *Ctx) Comm() *mpi.Comm { return c.comm }

// Node returns the shared-memory communicator.
func (c *Ctx) Node() *mpi.Comm { return c.node }

// Bridge returns the leader communicator (nil on children).
func (c *Ctx) Bridge() *mpi.Comm { return c.bridge }

// IsLeader reports whether this rank is its node's leader.
func (c *Ctx) IsLeader() bool { return c.node.Rank() == 0 }

// Nodes returns the number of nodes.
func (c *Ctx) Nodes() int { return len(c.nodeSizes) }

// NodeSizes returns ranks per node in bridge order (shared across all
// ranks; do not modify).
func (c *Ctx) NodeSizes() []int { return c.nodeSizes }

// SlotOf maps a comm rank to its slot in node-gathered buffers. Under
// SMP-style placement this is the identity; for other placements it
// realizes the node-sorted global rank array of Sect. 6.
func (c *Ctx) SlotOf(rank int) int { return c.rankToSlot[rank] }

// RankAt is the inverse of SlotOf.
func (c *Ctx) RankAt(slot int) int { return c.slotToRank[slot] }

// SMPPlacement reports whether comm ranks are laid out SMP-style (node
// blocks contiguous in rank order).
func (c *Ctx) SMPPlacement() bool { return c.smp }

// Sync returns the configured synchronization flavor.
func (c *Ctx) Sync() SyncMode { return c.sync }

// MyNodeIdx returns this rank's node position in bridge order.
func (c *Ctx) MyNodeIdx() int { return c.myNodeIdx }
