package hybrid

import (
	"fmt"

	"repro/internal/coll"
	"repro/internal/mpi"
)

// SyncMode selects how on-node ranks synchronize around the bridge
// exchange (paper Sect. 6 "Explicit synchronization").
type SyncMode int

const (
	// SyncBarrier is the paper's scheme: an MPI barrier over the
	// shared-memory communicator before and after the exchange.
	SyncBarrier SyncMode = iota
	// SyncP2P replaces each barrier with pairwise zero-byte flag
	// messages between children and the leader (the "light-weight
	// means").
	SyncP2P
	// SyncSharedFlags signals through per-rank epoch counters stored
	// in the shared segment itself ([8]); the cheapest flavor.
	SyncSharedFlags
)

// String names the sync mode.
func (s SyncMode) String() string {
	switch s {
	case SyncBarrier:
		return "barrier"
	case SyncP2P:
		return "p2p"
	case SyncSharedFlags:
		return "sharedflags"
	default:
		return fmt.Sprintf("SyncMode(%d)", int(s))
	}
}

// Ctx is one rank's handle on the hybrid MPI+MPI context built over a
// communicator: the shared-memory and bridge communicators plus the
// level-sorted global rank array that supports rank placements other
// than SMP-style (paper Sect. 6 "Rank placement"). It is a thin
// instantiation of the multi-level composer with a one-level stack: the
// shared-memory level hosting the window.
type Ctx struct {
	comm   *mpi.Comm
	node   *mpi.Comm // the shared-level communicator (per node by default)
	bridge *mpi.Comm // nil on children

	sync  SyncMode
	level string // topology level hosting the shared window

	// Level-sorted rank array: slot s holds the comm rank stored at
	// position s of every gathered buffer. Groups appear in bridge
	// order; ranks within a group in group-comm order. Under SMP
	// placement slotToRank is the identity.
	slotToRank []int
	rankToSlot []int
	nodeSizes  []int // bridge order
	nodeFirst  []int // first slot of each group
	myNodeIdx  int
	smp        bool

	collTuning *coll.Tuning
}

// Option configures a Ctx.
type Option func(*Ctx)

// WithSync selects the synchronization flavor (default SyncBarrier, as
// in the paper).
func WithSync(m SyncMode) Option { return func(c *Ctx) { c.sync = m } }

// WithSharedLevel places the shared window (and the sync domain) at the
// named topology level: "node" (the default), or any level nested
// inside the node such as "socket" or "numa".
func WithSharedLevel(level string) Option { return func(c *Ctx) { c.level = level } }

// WithCollTuning routes every collective the hybrid context issues —
// the bridge exchanges of its leaders in particular — through the
// given selection-engine tuning. Without it the context inherits
// whatever tuning the parent communicator (or world) carries.
func WithCollTuning(t coll.Tuning) Option { return func(c *Ctx) { c.collTuning = &t } }

// New builds the hybrid context over a communicator: the two-level
// communicator split of Fig. 4 lines 2-10 plus the level-sorted rank
// array, all through the composer's plan-published geometry (rank 0
// computes once, everyone shares). Construction is untimed one-off
// setup.
func New(comm *mpi.Comm, opts ...Option) (*Ctx, error) {
	if comm == nil {
		return nil, fmt.Errorf("hybrid: New on nil communicator")
	}
	ctx := &Ctx{comm: comm}
	for _, o := range opts {
		o(ctx)
	}
	if ctx.level == "" {
		if t := coll.TuningFor(comm); t.SharedLevel != "" {
			ctx.level = t.SharedLevel
		} else {
			ctx.level = "node"
		}
	}
	topo := comm.Proc().World().Topology()
	lvl, ok := topo.LevelIndex(ctx.level)
	if !ok {
		return nil, fmt.Errorf("hybrid: topology %s has no level %q", topo, ctx.level)
	}
	if lvl > topo.NodeLevel() {
		return nil, fmt.Errorf("hybrid: shared window cannot sit at level %q outside the node (no load/store reachability)", ctx.level)
	}

	comp, err := coll.NewComposer(comm, []int{lvl})
	if err != nil {
		return nil, fmt.Errorf("hybrid: %w", err)
	}
	node, bridge := comp.Tier(0), comp.Top()
	if ctx.collTuning != nil {
		// Attach to the context's own communicators only: the caller's
		// handle keeps whatever tuning it already carries.
		node.SetCollConfig(*ctx.collTuning)
		if bridge != nil {
			bridge.SetCollConfig(*ctx.collTuning)
		}
	}
	ctx.node, ctx.bridge = node, bridge
	ctx.slotToRank = comp.RanksBySlot()
	ctx.rankToSlot = comp.SlotsByRank()
	ctx.nodeSizes = comp.GroupSizes(0)
	ctx.nodeFirst = comp.GroupFirsts(0)
	ctx.smp = comp.SMP()
	ctx.myNodeIdx = comp.MyGroup(0)
	return ctx, nil
}

// Comm returns the communicator the context was built over.
func (c *Ctx) Comm() *mpi.Comm { return c.comm }

// Node returns the shared-memory communicator (the shared-level group:
// the whole node by default, one socket/numa domain when the context
// was built with a finer shared level).
func (c *Ctx) Node() *mpi.Comm { return c.node }

// Bridge returns the leader communicator (nil on children).
func (c *Ctx) Bridge() *mpi.Comm { return c.bridge }

// IsLeader reports whether this rank is its group's leader.
func (c *Ctx) IsLeader() bool { return c.node.Rank() == 0 }

// Nodes returns the number of shared-level groups (nodes by default).
func (c *Ctx) Nodes() int { return len(c.nodeSizes) }

// SharedLevel returns the topology level name the window sits at.
func (c *Ctx) SharedLevel() string { return c.level }

// NodeSizes returns ranks per group in bridge order (shared across all
// ranks; do not modify).
func (c *Ctx) NodeSizes() []int { return c.nodeSizes }

// SlotOf maps a comm rank to its slot in gathered buffers. Under
// SMP-style placement this is the identity; for other placements it
// realizes the node-sorted global rank array of Sect. 6.
func (c *Ctx) SlotOf(rank int) int { return c.rankToSlot[rank] }

// RankAt is the inverse of SlotOf.
func (c *Ctx) RankAt(slot int) int { return c.slotToRank[slot] }

// SMPPlacement reports whether comm ranks are laid out SMP-style (group
// blocks contiguous in rank order).
func (c *Ctx) SMPPlacement() bool { return c.smp }

// Sync returns the configured synchronization flavor.
func (c *Ctx) Sync() SyncMode { return c.sync }

// MyNodeIdx returns this rank's group position in bridge order.
func (c *Ctx) MyNodeIdx() int { return c.myNodeIdx }
