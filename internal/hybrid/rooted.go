package hybrid

import (
	"fmt"

	"repro/internal/coll"
	"repro/internal/mpi"
)

// Rooted hybrid collectives: gather, scatter and reduce with a single
// shared staging segment per node. They complete the collective family
// along the same single-copy principle as the paper's allgather and
// broadcast: children write to (or read from) the node segment by
// load/store; only leaders move bytes between nodes.

// Gatherer is the hybrid gather: every rank writes its block into the
// node's shared staging; leaders forward aggregated node blocks to the
// root's leader; ranks on the root's node read results in place.
type Gatherer struct {
	ctx *Ctx
	per int
	win *mpi.Win
	buf mpi.Buf // node staging: one slot per comm rank (slot order)
}

// NewGatherer prepares a hybrid gather of per bytes per rank (one-off).
func (c *Ctx) NewGatherer(per int) (*Gatherer, error) {
	if per < 0 {
		return nil, fmt.Errorf("hybrid: negative block size %d", per)
	}
	total := per * c.comm.Size()
	win, err := mpi.WinAllocateLeader(c.node, total)
	if err != nil {
		return nil, err
	}
	return &Gatherer{ctx: c, per: per, win: win, buf: win.Query(0).Slice(0, total)}, nil
}

// Mine returns this rank's input slot.
func (g *Gatherer) Mine() mpi.Buf {
	slot := g.ctx.SlotOf(g.ctx.comm.Rank())
	return g.buf.Slice(slot*g.per, g.per)
}

// Result returns the gathered buffer (valid on the root's node after
// Gather; slot order).
func (g *Gatherer) Result() mpi.Buf { return g.buf }

// Gather runs the timed operation with the given root (comm rank).
func (g *Gatherer) Gather(root int) error {
	c := g.ctx
	if root < 0 || root >= c.comm.Size() {
		return fmt.Errorf("hybrid: gather root %d out of range", root)
	}
	if err := c.Arrive(); err != nil {
		return fmt.Errorf("hybrid: gather arrive: %w", err)
	}
	rootNode := c.nodeOfSlot(c.SlotOf(root))
	if c.bridge != nil && c.Nodes() > 1 {
		// Leaders send their node block to the root's leader.
		counts := make([]int, c.bridge.Size())
		for n := range counts {
			counts[n] = c.nodeSizes[n] * g.per
		}
		displs := make([]int, c.bridge.Size())
		for n := range displs {
			displs[n] = c.nodeFirst[n] * g.per
		}
		me := c.bridge.Rank()
		if me == rootNode {
			for n := 0; n < c.bridge.Size(); n++ {
				if n == me {
					continue
				}
				if _, err := c.bridge.Recv(g.buf.Slice(displs[n], counts[n]), n, tagHyAlltoall+1); err != nil {
					return fmt.Errorf("hybrid: gather bridge recv: %w", err)
				}
			}
		} else {
			if err := c.bridge.Send(g.buf.Slice(displs[me], counts[me]), rootNode, tagHyAlltoall+1); err != nil {
				return fmt.Errorf("hybrid: gather bridge send: %w", err)
			}
		}
	}
	if err := c.Release(); err != nil {
		return fmt.Errorf("hybrid: gather release: %w", err)
	}
	return nil
}

// nodeOfSlot maps a slot to its node's bridge index.
func (c *Ctx) nodeOfSlot(slot int) int {
	for n := 0; n < c.Nodes(); n++ {
		if slot >= c.nodeFirst[n] && slot < c.nodeFirst[n]+c.nodeSizes[n] {
			return n
		}
	}
	return 0
}

// Scatterer is the hybrid scatter: the root writes all blocks into its
// node's shared staging; leaders receive their node's slice; children
// read their slot in place.
type Scatterer struct {
	ctx *Ctx
	per int
	win *mpi.Win
	buf mpi.Buf
}

// NewScatterer prepares a hybrid scatter of per bytes per rank.
func (c *Ctx) NewScatterer(per int) (*Scatterer, error) {
	if per < 0 {
		return nil, fmt.Errorf("hybrid: negative block size %d", per)
	}
	total := per * c.comm.Size()
	win, err := mpi.WinAllocateLeader(c.node, total)
	if err != nil {
		return nil, err
	}
	return &Scatterer{ctx: c, per: per, win: win, buf: win.Query(0).Slice(0, total)}, nil
}

// Input returns the full input buffer; the root fills it (slot order)
// before Scatter.
func (s *Scatterer) Input() mpi.Buf { return s.buf }

// Mine returns this rank's received block (valid after Scatter).
func (s *Scatterer) Mine() mpi.Buf {
	slot := s.ctx.SlotOf(s.ctx.comm.Rank())
	return s.buf.Slice(slot*s.per, s.per)
}

// Scatter runs the timed operation with the given root (comm rank).
func (s *Scatterer) Scatter(root int) error {
	c := s.ctx
	if root < 0 || root >= c.comm.Size() {
		return fmt.Errorf("hybrid: scatter root %d out of range", root)
	}
	rootSlot := c.SlotOf(root)
	rootNode := c.nodeOfSlot(rootSlot)
	// Order the root's writes before the leaders' sends.
	if c.myNodeIdx == rootNode {
		if rootSlot != c.nodeFirst[rootNode] {
			// Root is a child: flag handoff to its leader.
			switch {
			case c.comm.Rank() == root:
				if err := c.node.SendFlag(0, tagHybridFlag); err != nil {
					return err
				}
			case c.IsLeader():
				if err := c.node.RecvFlag(rootSlot-c.nodeFirst[rootNode], tagHybridFlag); err != nil {
					return err
				}
			}
		}
	}
	if c.bridge != nil && c.Nodes() > 1 {
		me := c.bridge.Rank()
		if me == rootNode {
			for n := 0; n < c.bridge.Size(); n++ {
				if n == me {
					continue
				}
				off := c.nodeFirst[n] * s.per
				cnt := c.nodeSizes[n] * s.per
				if err := c.bridge.Send(s.buf.Slice(off, cnt), n, tagHyAlltoall+2); err != nil {
					return fmt.Errorf("hybrid: scatter bridge send: %w", err)
				}
			}
		} else {
			off := c.nodeFirst[me] * s.per
			cnt := c.nodeSizes[me] * s.per
			if _, err := c.bridge.Recv(s.buf.Slice(off, cnt), rootNode, tagHyAlltoall+2); err != nil {
				return fmt.Errorf("hybrid: scatter bridge recv: %w", err)
			}
		}
	}
	if err := c.Release(); err != nil {
		return fmt.Errorf("hybrid: scatter release: %w", err)
	}
	return nil
}

// Reducer is the hybrid rooted reduce: like Allreducer but the final
// result lands only on the root's node (leaders run a tree reduce on
// the bridge instead of an allreduce).
type Reducer struct {
	ctx     *Ctx
	count   int
	dt      mpi.Datatype
	inWin   *mpi.Win
	outWin  *mpi.Win
	in      mpi.Buf
	out     mpi.Buf
	scratch mpi.Buf
}

// NewReducer prepares a hybrid reduce of count elements of dt.
func (c *Ctx) NewReducer(count int, dt mpi.Datatype) (*Reducer, error) {
	if count < 0 {
		return nil, fmt.Errorf("hybrid: negative element count %d", count)
	}
	bytes := count * dt.Size()
	inWin, err := mpi.WinAllocateLeader(c.node, bytes*c.node.Size())
	if err != nil {
		return nil, err
	}
	outWin, err := mpi.WinAllocateLeader(c.node, bytes)
	if err != nil {
		return nil, err
	}
	return &Reducer{
		ctx:     c,
		count:   count,
		dt:      dt,
		inWin:   inWin,
		outWin:  outWin,
		in:      inWin.Query(0).Slice(0, bytes*c.node.Size()),
		out:     outWin.Query(0).Slice(0, bytes),
		scratch: c.comm.Proc().World().NewBuf(bytes),
	}, nil
}

// Mine returns this rank's input slot.
func (r *Reducer) Mine() mpi.Buf {
	bytes := r.count * r.dt.Size()
	return r.in.Slice(r.ctx.node.Rank()*bytes, bytes)
}

// Result returns the node result segment (meaningful on the root's node
// after Reduce).
func (r *Reducer) Result() mpi.Buf { return r.out }

// Reduce runs the timed operation onto root (comm rank).
func (r *Reducer) Reduce(op mpi.Op, root int) error {
	c := r.ctx
	if root < 0 || root >= c.comm.Size() {
		return fmt.Errorf("hybrid: reduce root %d out of range", root)
	}
	bytes := r.count * r.dt.Size()
	if err := c.Arrive(); err != nil {
		return fmt.Errorf("hybrid: reduce arrive: %w", err)
	}
	rootNode := c.nodeOfSlot(c.SlotOf(root))
	if c.IsLeader() {
		p := c.node.Proc()
		p.CopyLocal(r.out, r.in.Slice(0, bytes), 1)
		for rr := 1; rr < c.node.Size(); rr++ {
			op.Apply(r.out, r.in.Slice(rr*bytes, bytes), r.count, r.dt)
			p.Compute(float64(r.count))
			p.TouchAll(bytes, 1)
		}
		if c.bridge != nil && c.bridge.Size() > 1 {
			if err := coll.Reduce(c.bridge, r.out, r.scratch, r.count, r.dt, op, rootNode); err != nil {
				return fmt.Errorf("hybrid: reduce bridge phase: %w", err)
			}
			if c.bridge.Rank() == rootNode {
				p.CopyLocal(r.out, r.scratch, 1)
			}
		}
	}
	if err := c.Release(); err != nil {
		return fmt.Errorf("hybrid: reduce release: %w", err)
	}
	return nil
}
