package hybrid

import (
	"fmt"

	"repro/internal/sim"
)

// Tag for p2p flag messages (inside the runtime-internal tag space but
// distinct from the barrier tag).
const tagHybridFlag = 1<<24 + 7

// Arrive is the pre-exchange synchronization: the leader must not start
// the bridge exchange until every on-node rank has finished writing its
// partition of the shared buffer (first barrier of Fig. 4).
func (c *Ctx) Arrive() error {
	switch c.sync {
	case SyncBarrier:
		return c.node.Barrier()
	case SyncP2P:
		return c.arriveP2P()
	case SyncSharedFlags:
		return c.arriveFlags()
	default:
		return fmt.Errorf("hybrid: unknown sync mode %v", c.sync)
	}
}

// Release is the post-exchange synchronization: children must not read
// the gathered result until the leader's exchange completed (second
// barrier of Fig. 4 / the single barrier of Fig. 6).
func (c *Ctx) Release() error {
	switch c.sync {
	case SyncBarrier:
		return c.node.Barrier()
	case SyncP2P:
		return c.releaseP2P()
	case SyncSharedFlags:
		return c.releaseFlags()
	default:
		return fmt.Errorf("hybrid: unknown sync mode %v", c.sync)
	}
}

// arriveP2P: every child signals the leader with a shared-memory flag
// (the paper's "pairs of MPI point-to-point communications", realized
// through the shm flag path).
func (c *Ctx) arriveP2P() error {
	if c.node.Rank() != 0 {
		return c.node.SendFlag(0, tagHybridFlag)
	}
	for r := 1; r < c.node.Size(); r++ {
		if err := c.node.RecvFlag(r, tagHybridFlag); err != nil {
			return err
		}
	}
	return nil
}

// releaseP2P: the leader signals every child.
func (c *Ctx) releaseP2P() error {
	if c.node.Rank() == 0 {
		for r := 1; r < c.node.Size(); r++ {
			if err := c.node.SendFlag(r, tagHybridFlag); err != nil {
				return err
			}
		}
		return nil
	}
	return c.node.RecvFlag(0, tagHybridFlag)
}

// Shared-flag synchronization ([8]): each rank owns an epoch counter in
// the shared segment. Arrival: every child bumps its counter (one store)
// and the leader spins until all counters reach the epoch. Release: the
// leader bumps a release counter, children spin on it. In virtual time,
// a store costs MemAlpha and the spinner leaves as soon as the last
// store lands plus one cache-line read per flag.
func (c *Ctx) arriveFlags() error {
	p := c.node.Proc()
	m := p.Model()
	// Children: one flag store each.
	if c.node.Rank() != 0 {
		p.Elapse(m.MemAlpha)
		c.publishClock()
		return nil
	}
	// Leader: wait for the latest child store, then pay one
	// cache-line load per flag (a quarter of a full copy-initiation,
	// since the line is hot once the child's store arrives).
	latest := c.collectClocks()
	p.AwaitTime(latest)
	p.Elapse(sim.Time(c.node.Size()-1) * m.MemAlpha / 4)
	return nil
}

func (c *Ctx) releaseFlags() error {
	p := c.node.Proc()
	m := p.Model()
	if c.node.Rank() == 0 {
		p.Elapse(m.MemAlpha) // release-flag store
		c.publishClock()
		return nil
	}
	latest := c.collectClocks()
	p.AwaitTime(latest)
	p.Elapse(m.MemAlpha) // flag read observing the new epoch
	return nil
}

// publishClock / collectClocks exchange virtual clocks through the
// untimed coordinator; the *timed* cost is charged explicitly by the
// callers above. publishClock is called by the signaling side(s),
// collectClocks by the waiting side; both flavors funnel through one
// FuseClocks so every member participates exactly once per phase.
func (c *Ctx) publishClock() {
	c.node.FuseClocks(c.node.Proc().Clock())
}

func (c *Ctx) collectClocks() sim.Time {
	return c.node.FuseClocks(c.node.Proc().Clock())
}
