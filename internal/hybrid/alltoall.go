package hybrid

import (
	"fmt"

	"repro/internal/mpi"
)

const tagHyAlltoall = 1<<25 + 40

// Alltoaller extends the paper's single-copy-per-node principle to the
// complete exchange (MPI_Alltoall — called out in the paper's
// conclusion as "not a scalable communication pattern" and the natural
// next target). Both the send and the receive matrices live in one
// shared window per node:
//
//   - every rank writes its send row (one block per destination) into
//     the node's shared send segment;
//   - on-node blocks move by direct shared-memory copies, done in
//     parallel by their *receivers*;
//   - node leaders exchange packed inter-node submatrices pairwise;
//   - children read their received row from the shared recv segment.
type Alltoaller struct {
	ctx  *Ctx
	per  int // bytes per (src, dst) block
	size int // comm size

	sendWin *mpi.Win
	recvWin *mpi.Win
	send    mpi.Buf // node send matrix: nodeSize x size x per
	recv    mpi.Buf // node recv matrix: nodeSize x size x per
	staging mpi.Buf // leader pack/unpack buffer
}

// NewAlltoaller prepares the shared segments (one-off).
func (c *Ctx) NewAlltoaller(per int) (*Alltoaller, error) {
	if per < 0 {
		return nil, fmt.Errorf("hybrid: negative block size %d", per)
	}
	size := c.comm.Size()
	rowBytes := size * per
	sendWin, err := mpi.WinAllocateLeader(c.node, c.node.Size()*rowBytes)
	if err != nil {
		return nil, err
	}
	recvWin, err := mpi.WinAllocateLeader(c.node, c.node.Size()*rowBytes)
	if err != nil {
		return nil, err
	}
	a := &Alltoaller{
		ctx:     c,
		per:     per,
		size:    size,
		sendWin: sendWin,
		recvWin: recvWin,
		send:    sendWin.Query(0).Slice(0, c.node.Size()*rowBytes),
		recv:    recvWin.Query(0).Slice(0, c.node.Size()*rowBytes),
	}
	if c.IsLeader() {
		// Staging for the largest inter-node submatrix.
		maxPPN := 0
		for _, s := range c.nodeSizes {
			if s > maxPPN {
				maxPPN = s
			}
		}
		a.staging = c.comm.Proc().World().NewBuf(c.node.Size() * maxPPN * per)
	}
	return a, nil
}

// MineSend returns this rank's send row: one `per`-byte block for every
// destination comm rank, in slot order (rank order under SMP
// placement). Write it before calling Alltoall.
func (a *Alltoaller) MineSend() mpi.Buf {
	row := a.size * a.per
	return a.send.Slice(a.ctx.node.Rank()*row, row)
}

// MineRecv returns this rank's receive row: the block from every source
// comm rank, in slot order (valid after Alltoall).
func (a *Alltoaller) MineRecv() mpi.Buf {
	row := a.size * a.per
	return a.recv.Slice(a.ctx.node.Rank()*row, row)
}

// sendBlock returns the block source local rank j addressed to slot s.
func (a *Alltoaller) sendBlock(localSrc, slot int) mpi.Buf {
	return a.send.Slice(localSrc*a.size*a.per+slot*a.per, a.per)
}

// recvBlock returns receive-row block of local rank j from slot s.
func (a *Alltoaller) recvBlock(localDst, slot int) mpi.Buf {
	return a.recv.Slice(localDst*a.size*a.per+slot*a.per, a.per)
}

// Alltoall runs the timed exchange.
func (a *Alltoaller) Alltoall() error {
	c := a.ctx
	p := c.comm.Proc()
	if err := c.Arrive(); err != nil {
		return fmt.Errorf("hybrid: alltoall arrive: %w", err)
	}

	// Intra-node blocks: every rank pulls its own column from the
	// node's send matrix — ppn parallel copiers.
	myFirst := c.nodeFirst[c.myNodeIdx]
	mySlot := c.SlotOf(c.comm.Rank())
	ppn := c.node.Size()
	for j := 0; j < ppn; j++ {
		src := a.sendBlock(j, mySlot)
		dst := a.recvBlock(c.node.Rank(), myFirst+j)
		mpi.CopyData(dst, src)
	}
	p.Elapse(p.Model().CopyCost(ppn*a.per, ppn))

	// Inter-node blocks: leaders exchange packed submatrices
	// pairwise over the bridge.
	if c.bridge != nil && c.bridge.Size() > 1 {
		if err := a.bridgeExchange(); err != nil {
			return err
		}
	}

	if err := c.Release(); err != nil {
		return fmt.Errorf("hybrid: alltoall release: %w", err)
	}
	return nil
}

// bridgeExchange runs the leader-level pairwise exchange: for each
// step, pack my node's blocks addressed to the partner node, exchange,
// and scatter the received submatrix into the recv segment.
func (a *Alltoaller) bridgeExchange() error {
	c := a.ctx
	p := c.comm.Proc()
	b := c.bridge
	n := b.Size()
	me := b.Rank()
	myPPN := c.nodeSizes[me]

	for step := 1; step < n; step++ {
		dst := (me + step) % n
		src := (me - step + n) % n
		dstFirst, dstPPN := c.nodeFirst[dst], c.nodeSizes[dst]
		srcFirst, srcPPN := c.nodeFirst[src], c.nodeSizes[src]

		// Pack: rows = my node's local ranks, cols = partner's
		// slots.
		packBytes := myPPN * dstPPN * a.per
		for j := 0; j < myPPN; j++ {
			for t := 0; t < dstPPN; t++ {
				blk := a.sendBlock(j, dstFirst+t)
				off := (j*dstPPN + t) * a.per
				mpi.CopyData(a.staging.Slice(off, a.per), blk)
			}
		}
		p.Elapse(p.Model().CopyCost(packBytes, 1))

		recvBytes := srcPPN * myPPN * a.per
		recvStage := p.World().NewBuf(recvBytes)
		if _, err := b.Sendrecv(
			a.staging.Slice(0, packBytes), dst, tagHyAlltoall,
			recvStage, src, tagHyAlltoall,
		); err != nil {
			return fmt.Errorf("hybrid: alltoall bridge step %d: %w", step, err)
		}

		// Unpack: the partner packed [its local ranks][my slots];
		// scatter into my node's recv rows.
		for j := 0; j < srcPPN; j++ {
			for t := 0; t < myPPN; t++ {
				off := (j*myPPN + t) * a.per
				mpi.CopyData(a.recvBlock(t, srcFirst+j), recvStage.Slice(off, a.per))
			}
		}
		p.Elapse(p.Model().CopyCost(recvBytes, 1))
	}
	return nil
}
