package hybrid

import (
	"fmt"
	"testing"

	"repro/internal/mpi"
)

func TestHyGather(t *testing.T) {
	for _, shape := range [][]int{{4}, {3, 3}, {4, 2, 3}} {
		for _, root := range []int{0, 1} {
			t.Run(fmt.Sprintf("%v/root%d", shape, root), func(t *testing.T) {
				n := 0
				for _, s := range shape {
					n += s
				}
				runWorld(t, shape, func(p *mpi.Proc) error {
					ctx, err := New(p.CommWorld())
					if err != nil {
						return err
					}
					g, err := ctx.NewGatherer(8)
					if err != nil {
						return err
					}
					g.Mine().PutFloat64(0, float64(500+p.Rank()))
					if err := g.Gather(root); err != nil {
						return err
					}
					// Every rank on the root's node can read the result.
					rootNode := ctx.nodeOfSlot(ctx.SlotOf(root))
					if ctx.MyNodeIdx() == rootNode {
						res := g.Result()
						for r := 0; r < n; r++ {
							slot := ctx.SlotOf(r)
							if got := res.Slice(slot*8, 8).Float64At(0); got != float64(500+r) {
								t.Errorf("rank %d sees slot of %d = %v", p.Rank(), r, got)
								return nil
							}
						}
					}
					return nil
				})
			})
		}
	}
}

func TestHyScatter(t *testing.T) {
	for _, shape := range [][]int{{4}, {3, 3}, {2, 4}} {
		for _, root := range []int{0, 1} {
			t.Run(fmt.Sprintf("%v/root%d", shape, root), func(t *testing.T) {
				n := 0
				for _, s := range shape {
					n += s
				}
				runWorld(t, shape, func(p *mpi.Proc) error {
					ctx, err := New(p.CommWorld())
					if err != nil {
						return err
					}
					s, err := ctx.NewScatterer(8)
					if err != nil {
						return err
					}
					if p.Rank() == root {
						in := s.Input()
						for r := 0; r < n; r++ {
							in.Slice(ctx.SlotOf(r)*8, 8).PutFloat64(0, float64(700+r))
						}
					}
					if err := s.Scatter(root); err != nil {
						return err
					}
					// Only ranks on the root's node see real data in
					// shared memory before the bridge... every rank
					// must see its own block after Scatter.
					if got := s.Mine().Float64At(0); got != float64(700+p.Rank()) {
						t.Errorf("rank %d block = %v", p.Rank(), got)
					}
					return nil
				})
			})
		}
	}
}

func TestHyReduce(t *testing.T) {
	for _, shape := range [][]int{{4}, {3, 3}, {2, 2, 2}} {
		for _, root := range []int{0, 2} {
			t.Run(fmt.Sprintf("%v/root%d", shape, root), func(t *testing.T) {
				n := 0
				for _, s := range shape {
					n += s
				}
				const elems = 5
				runWorld(t, shape, func(p *mpi.Proc) error {
					ctx, err := New(p.CommWorld())
					if err != nil {
						return err
					}
					r, err := ctx.NewReducer(elems, mpi.Float64)
					if err != nil {
						return err
					}
					mine := r.Mine()
					for i := 0; i < elems; i++ {
						mine.PutFloat64(i, float64(p.Rank()+i))
					}
					if err := r.Reduce(mpi.OpSum, root); err != nil {
						return err
					}
					rootNode := ctx.nodeOfSlot(ctx.SlotOf(root))
					if ctx.MyNodeIdx() == rootNode {
						for i := 0; i < elems; i++ {
							want := float64(n*i + n*(n-1)/2)
							if got := r.Result().Float64At(i); got != want {
								t.Errorf("rank %d elem %d = %v, want %v", p.Rank(), i, got, want)
								return nil
							}
						}
					}
					return nil
				})
			})
		}
	}
}

func TestRootedValidation(t *testing.T) {
	runWorld(t, []int{2}, func(p *mpi.Proc) error {
		ctx, err := New(p.CommWorld())
		if err != nil {
			return err
		}
		if _, err := ctx.NewGatherer(-1); err == nil {
			t.Error("negative gather size accepted")
		}
		if _, err := ctx.NewScatterer(-1); err == nil {
			t.Error("negative scatter size accepted")
		}
		if _, err := ctx.NewReducer(-1, mpi.Float64); err == nil {
			t.Error("negative reduce count accepted")
		}
		g, err := ctx.NewGatherer(8)
		if err != nil {
			return err
		}
		if err := g.Gather(99); err == nil {
			t.Error("bad gather root accepted")
		}
		s, err := ctx.NewScatterer(8)
		if err != nil {
			return err
		}
		if err := s.Scatter(-1); err == nil {
			t.Error("bad scatter root accepted")
		}
		r, err := ctx.NewReducer(1, mpi.Float64)
		if err != nil {
			return err
		}
		if err := r.Reduce(mpi.OpSum, 5); err == nil {
			t.Error("bad reduce root accepted")
		}
		return nil
	})
}
