// Package hybrid implements the paper's contribution: MPI collective
// operations for the hybrid MPI+MPI programming model. Each node keeps
// exactly one copy of replicated data in an MPI-3 shared-memory
// window; only the per-node leader takes part in the inter-node
// exchange over the bridge communicator; the other on-node ranks
// ("children") access the shared segment directly and synchronize with
// the leader around the exchange (Figs. 4 and 6 of the paper).
//
// A Ctx holds the communicator pair (shared-memory group plus bridge)
// and the synchronization mode; NewAllgatherer, Allreduce, Bcast,
// Alltoall and the rooted variants build the paper's Hy_* collectives
// on top of it. SyncMode selects how children order themselves around
// the leader's exchange: the paper's barrier pair, or the lighter flag
// and epoch schemes of Sect. 6.
//
// With a multi-level topology the shared window (and its sync domain)
// can sit at any shared-memory level: the paper's node scheme is the
// default, a socket- or numa-level window turns every socket/numa
// leader into a bridge participant (more exchange parallelism, smaller
// windows). The level is selected with WithSharedLevel or the
// sharedlevel= key of coll.Tuning / REPRO_COLL_TUNING (see TUNING.md
// at the repository root).
package hybrid
