package hybrid

import (
	"fmt"
	"testing"

	"repro/internal/coll"
	"repro/internal/mpi"
	"repro/internal/sim"
)

func runHierWorld(t *testing.T, topo *sim.Topology, opts []mpi.Option, body func(p *mpi.Proc) error) *mpi.World {
	t.Helper()
	w, err := mpi.NewWorld(sim.HazelHenCray(), topo, append([]mpi.Option{mpi.WithRealData()}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(body); err != nil {
		t.Fatal(err)
	}
	return w
}

func socketTopo(t *testing.T) *sim.Topology {
	t.Helper()
	topo, err := sim.UniformHier(3,
		sim.LevelDim{Name: "socket", Arity: 2},
		sim.LevelDim{Name: "node", Arity: 2})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestSocketLevelHybrid places the shared window at the socket level:
// four windows instead of two, every socket leader on the bridge, and
// the allgather result still correct on every rank — for all three
// sync flavors.
func TestSocketLevelHybrid(t *testing.T) {
	for _, mode := range []SyncMode{SyncBarrier, SyncP2P, SyncSharedFlags} {
		t.Run(mode.String(), func(t *testing.T) {
			topo := socketTopo(t)
			const elems = 6
			per := 8 * elems
			runHierWorld(t, topo, nil, func(p *mpi.Proc) error {
				ctx, err := New(p.CommWorld(), WithSharedLevel("socket"), WithSync(mode))
				if err != nil {
					return err
				}
				if ctx.SharedLevel() != "socket" {
					return fmt.Errorf("shared level = %q", ctx.SharedLevel())
				}
				if ctx.Node().Size() != 3 {
					return fmt.Errorf("socket comm size = %d, want 3", ctx.Node().Size())
				}
				if ctx.Nodes() != 4 {
					return fmt.Errorf("groups = %d, want 4 sockets", ctx.Nodes())
				}
				// Socket leaders — one per socket — form the bridge.
				if p.LocalRankAt(0) == 0 {
					if ctx.Bridge() == nil || ctx.Bridge().Size() != 4 {
						return fmt.Errorf("bridge missing or wrong size on socket leader")
					}
				} else if ctx.Bridge() != nil {
					return fmt.Errorf("child rank %d has a bridge handle", p.Rank())
				}

				a, err := ctx.NewAllgatherer(per)
				if err != nil {
					return err
				}
				src := make([]float64, elems)
				for i := range src {
					src[i] = float64(p.Rank()*1_000_000 + i)
				}
				a.Mine().PutFloat64s(0, src)
				if err := a.Allgather(); err != nil {
					return err
				}
				for r := 0; r < p.Size(); r++ {
					blk := a.Block(r)
					for i := 0; i < elems; i++ {
						want := float64(r*1_000_000 + i)
						if got := blk.Float64At(i); got != want {
							return fmt.Errorf("rank %d block %d elem %d = %v, want %v", p.Rank(), r, i, got, want)
						}
					}
				}
				return nil
			})
		})
	}
}

// TestSharedLevelViaTuning threads the shared level through
// coll.Tuning (the REPRO_COLL_TUNING path): a world configured with
// sharedlevel=socket builds socket-level contexts with no explicit
// option.
func TestSharedLevelViaTuning(t *testing.T) {
	tun := coll.Tuning{SharedLevel: "socket"}
	topo := socketTopo(t)
	runHierWorld(t, topo, []mpi.Option{mpi.WithCollConfig(tun)}, func(p *mpi.Proc) error {
		ctx, err := New(p.CommWorld())
		if err != nil {
			return err
		}
		if ctx.SharedLevel() != "socket" || ctx.Node().Size() != 3 {
			return fmt.Errorf("tuning did not select the socket level: %q size %d",
				ctx.SharedLevel(), ctx.Node().Size())
		}
		// An explicit option still wins over the tuning.
		ctx2, err := New(p.CommWorld(), WithSharedLevel("node"))
		if err != nil {
			return err
		}
		if ctx2.Node().Size() != 6 {
			return fmt.Errorf("explicit node level ignored: size %d", ctx2.Node().Size())
		}
		return nil
	})
}

// TestSharedLevelValidation rejects levels the window cannot sit at.
func TestSharedLevelValidation(t *testing.T) {
	topo, err := sim.UniformHier(2,
		sim.LevelDim{Name: "node", Arity: 2},
		sim.LevelDim{Name: "group", Arity: 2})
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(sim.Laptop(), topo, mpi.WithRealData())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(p *mpi.Proc) error {
		if _, err := New(p.CommWorld(), WithSharedLevel("group")); err == nil {
			return fmt.Errorf("group-level window accepted (no load/store reachability)")
		}
		if _, err := New(p.CommWorld(), WithSharedLevel("nosuch")); err == nil {
			return fmt.Errorf("unknown level accepted")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSocketLevelAllreduce runs the reducing collective at the socket
// level for coverage of the windows-per-group path.
func TestSocketLevelAllreduce(t *testing.T) {
	topo := socketTopo(t)
	const elems = 4
	runHierWorld(t, topo, nil, func(p *mpi.Proc) error {
		ctx, err := New(p.CommWorld(), WithSharedLevel("socket"))
		if err != nil {
			return err
		}
		a, err := ctx.NewAllreducer(elems, mpi.Float64)
		if err != nil {
			return err
		}
		v := make([]float64, elems)
		for i := range v {
			v[i] = float64(p.Rank() + i)
		}
		a.Mine().PutFloat64s(0, v)
		if err := a.Allreduce(mpi.OpSum); err != nil {
			return err
		}
		n := p.Size()
		base := n * (n - 1) / 2
		for i := 0; i < elems; i++ {
			want := float64(base + n*i)
			if got := a.Result().Float64At(i); got != want {
				return fmt.Errorf("rank %d elem %d = %v, want %v", p.Rank(), i, got, want)
			}
		}
		return nil
	})
}
