package hybrid_test

import (
	"fmt"

	"repro/internal/hybrid"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// The paper's Hy_Allgather: each node holds one shared copy of the
// result, every rank writes its partition in place, and only the
// leaders exchange node blocks over the bridge. Rank 3 (on node 1)
// reads rank 0's block straight out of its node's shared window.
func ExampleCtx_NewAllgatherer() {
	topo := sim.MustUniform(2, 3) // two nodes, three ranks each
	w, err := mpi.NewWorld(sim.Laptop(), topo, mpi.WithRealData())
	if err != nil {
		panic(err)
	}
	var seen float64
	err = w.Run(func(p *mpi.Proc) error {
		ctx, err := hybrid.New(p.CommWorld())
		if err != nil {
			return err
		}
		ag, err := ctx.NewAllgatherer(8)
		if err != nil {
			return err
		}
		ag.Mine().PutFloat64(0, 100+float64(p.Rank()))
		if err := ag.Allgather(); err != nil {
			return err
		}
		if p.Rank() == 3 {
			seen = ag.Block(0).Float64At(0)
		}
		return ag.ReadFence()
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("rank 3 read rank 0's block: %g\n", seen)
	// Output:
	// rank 3 read rank 0's block: 100
}
