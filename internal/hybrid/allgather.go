package hybrid

import (
	"fmt"

	"repro/internal/coll"
	"repro/internal/mpi"
)

// Allgatherer is the hybrid MPI+MPI allgather of the paper's Fig. 4.
// One shared buffer per node holds the full result; each rank writes its
// own partition in place (no intra-node copies ever), and only the
// leaders exchange aggregated node blocks with MPI_Allgatherv on the
// bridge communicator.
//
// Construction (window allocation, count/displacement vectors) is the
// one-off; Allgather() is the repeatedly-invoked, timed operation whose
// cost the paper measures — synchronization included.
type Allgatherer struct {
	ctx        *Ctx
	win        *mpi.Win
	buf        mpi.Buf // the whole shared result buffer (node's single copy)
	counts     []int   // bytes per rank, slot order
	displs     []int   // byte offset per slot
	nodeCounts []int   // bytes per node, bridge order
	nodeDispls []int
	chunk      int // >0: pipelined bridge exchange for large blocks ([30])
}

// AllgatherOption configures an Allgatherer.
type AllgatherOption func(*Allgatherer)

// WithPipelineChunk enables the chunked (pipelined) bridge exchange for
// large messages, the extension the paper's conclusion points to ([30]).
// chunk is the pipeline granularity in bytes.
func WithPipelineChunk(chunk int) AllgatherOption {
	return func(a *Allgatherer) { a.chunk = chunk }
}

// NewAllgatherer prepares a hybrid allgather of `per` bytes per rank.
// The uniform geometry is synthesized directly (no member materializes
// a full per-rank count vector).
func (c *Ctx) NewAllgatherer(per int, opts ...AllgatherOption) (*Allgatherer, error) {
	if per < 0 {
		return nil, fmt.Errorf("hybrid: negative block size %d", per)
	}
	return c.newAllgatherer(nil, per, opts)
}

// agPlan is the slot-ordered allgather geometry, computed once by comm
// rank 0 and shared read-only by every member (the count vector must
// agree across members, as MPI_Allgatherv requires, so the leader's
// copy is everyone's copy).
type agPlan struct {
	uniform    int // >= 0: every count is this value (O(1) validation)
	total      int // sum of counts
	counts     []int
	displs     []int
	nodeCounts []int
	nodeDispls []int
}

// NewAllgathererV prepares the irregular variant: counts[r] bytes from
// comm rank r (an extension beyond the paper, which varies only the
// per-node rank count).
func (c *Ctx) NewAllgathererV(counts []int, opts ...AllgatherOption) (*Allgatherer, error) {
	if len(counts) != c.comm.Size() {
		return nil, fmt.Errorf("hybrid: got %d counts for %d ranks", len(counts), c.comm.Size())
	}
	// Validate the local copy on every member (members must pass
	// matching vectors, but a corrupt local copy should fail loudly on
	// the rank that holds it, not silently adopt rank 0's geometry).
	for r, cnt := range counts {
		if cnt < 0 {
			return nil, fmt.Errorf("hybrid: negative count %d for rank %d", cnt, r)
		}
	}
	return c.newAllgatherer(counts, 0, opts)
}

// newAllgatherer builds the allgatherer; counts == nil means a uniform
// `per` bytes per rank.
func (c *Ctx) newAllgatherer(counts []int, per int, opts []AllgatherOption) (*Allgatherer, error) {
	a := &Allgatherer{ctx: c}
	for _, o := range opts {
		o(a)
	}

	// Slot-ordered geometry (node-major layout), built once per
	// collective call and shared read-only through the world's setup
	// slot (mpi.SetupOnce) — no exchange runs at all: the plan is fully
	// determined by the context geometry and the (identical, per
	// MPI_Allgatherv semantics) member arguments, so whichever member
	// arrives first computes it for everyone.
	v, err := mpi.SetupOnce(c.comm, func() (any, error) {
		plan := &agPlan{uniform: -1, counts: make([]int, c.comm.Size())}
		for slot := range plan.counts {
			if counts != nil {
				plan.counts[slot] = counts[c.RankAt(slot)]
			} else {
				plan.counts[slot] = per
			}
		}
		if counts == nil {
			plan.uniform = per
		}
		plan.total = coll.Total(plan.counts)
		plan.displs = coll.Displs(plan.counts)
		plan.nodeCounts = make([]int, c.Nodes())
		plan.nodeDispls = make([]int, c.Nodes())
		for n := 0; n < c.Nodes(); n++ {
			first := c.nodeFirst[n]
			plan.nodeDispls[n] = plan.displs[first]
			for s := first; s < first+c.nodeSizes[n]; s++ {
				plan.nodeCounts[n] += plan.counts[s]
			}
		}
		return plan, nil
	})
	if err != nil {
		return nil, err
	}
	plan := v.(*agPlan)
	// Members must have passed the same geometry the plan was built
	// from; a divergent local vector is an application bug that must
	// fail loudly, not silently run with the builder's placement. The
	// uniform case compares one value; the irregular variant checks its
	// whole vector.
	if counts == nil {
		if plan.uniform != per {
			// Mixed constructors (a member passed an explicitly
			// uniform vector to the V variant) still agree when every
			// slot holds per; only then is the geometry identical.
			for slot, cnt := range plan.counts {
				if cnt != per {
					return nil, fmt.Errorf("hybrid: allgather counts diverge across ranks (slot %d: builder has %d, this rank has %d)",
						slot, cnt, per)
				}
			}
		}
	} else {
		for slot, cnt := range plan.counts {
			if want := counts[c.RankAt(slot)]; cnt != want {
				return nil, fmt.Errorf("hybrid: allgather counts diverge across ranks (slot %d: builder has %d, this rank has %d)",
					slot, cnt, want)
			}
		}
	}
	a.counts = plan.counts
	a.displs = plan.displs
	a.nodeCounts = plan.nodeCounts
	a.nodeDispls = plan.nodeDispls

	// Fig. 4 lines 13-16: only the leader asks for the contiguous
	// node memory; children query its base.
	total := plan.total
	win, err := mpi.WinAllocateLeader(c.node, total)
	if err != nil {
		return nil, err
	}
	a.win = win
	a.buf = win.Query(0).Slice(0, total)
	return a, nil
}

// Mine returns this rank's partition of the shared buffer — the
// "private data" each rank initializes independently (Fig. 4 lines
// 21-22). Writing here is writing the final result location: the hybrid
// scheme has no send buffer at all.
func (a *Allgatherer) Mine() mpi.Buf {
	slot := a.ctx.SlotOf(a.ctx.comm.Rank())
	return a.buf.Slice(a.displs[slot], a.counts[slot])
}

// Block returns the partition contributed by a given comm rank (valid
// after Allgather returns on this rank).
func (a *Allgatherer) Block(rank int) mpi.Buf {
	slot := a.ctx.SlotOf(rank)
	return a.buf.Slice(a.displs[slot], a.counts[slot])
}

// Buffer returns the whole gathered result (node-major slot order; use
// Block for rank addressing under non-SMP placements).
func (a *Allgatherer) Buffer() mpi.Buf { return a.buf }

// Counts returns the per-slot byte counts (shared across all ranks;
// do not modify).
func (a *Allgatherer) Counts() []int { return a.counts }

// Allgather runs the timed operation of Fig. 4 lines 23-39:
//
//	barrier; leaders: MPI_Allgatherv on the bridge; barrier
//
// with the single-node degenerate case collapsing to one barrier, and
// the configured sync flavor standing in for the barriers.
func (a *Allgatherer) Allgather() error {
	c := a.ctx
	multiNode := c.Nodes() > 1

	if !multiNode {
		// Fig. 4 lines 29-30/37-38: one barrier makes the node's
		// single buffer consistent; nothing moves. The pairwise
		// flavors are not symmetric, so they need both phases
		// (children must also wait before reading peers' slots).
		if c.sync == SyncBarrier {
			return c.Arrive()
		}
		if err := c.Arrive(); err != nil {
			return err
		}
		return c.Release()
	}

	// The leaders must wait until their children initialized all
	// partitions.
	if err := c.Arrive(); err != nil {
		return fmt.Errorf("hybrid: allgather arrive: %w", err)
	}
	if c.bridge != nil {
		var err error
		if a.chunk > 0 && maxInt(a.nodeCounts) > a.chunk {
			err = allgathervChunked(c.bridge, a.buf, a.nodeCounts, a.nodeDispls, a.chunk)
		} else {
			err = coll.AllgathervExplicit(c.bridge, a.buf, a.nodeCounts, a.nodeDispls)
		}
		if err != nil {
			return fmt.Errorf("hybrid: allgather bridge exchange: %w", err)
		}
	}
	// Children wait until the leaders finished the exchange.
	if err := c.Release(); err != nil {
		return fmt.Errorf("hybrid: allgather release: %w", err)
	}
	return nil
}

// ReadFence separates one epoch's reads from the next epoch's writes.
//
// The paper's two synchronizations (Fig. 4) order on-node writes before
// the exchange and the exchange before on-node reads — but nothing
// orders one iteration's *reads* before the next iteration's *writes*
// to the same shared partition. An iterative caller that rewrites
// Mine() every round (SUMMA panels, BPMF sampling phases) must call
// ReadFence after it has finished reading Buffer()/Block() and before
// the next write, or peers may observe the next epoch's data early.
// One-shot callers (and the OSU-style latency loop, which never reads
// between operations) do not need it.
func (a *Allgatherer) ReadFence() error { return a.ctx.node.Barrier() }

// allgathervChunked pipelines the ring exchange: each node block is cut
// into chunks and the ring runs once per chunk. Because ranks advance
// to the next chunk round as soon as their own exchange completes, the
// rounds overlap around the ring, approaching the pipelined bound of
// [30] for blocks beyond ~256 KiB.
func allgathervChunked(bridge *mpi.Comm, buf mpi.Buf, counts, displs []int, chunk int) error {
	maxCnt := maxInt(counts)
	rounds := (maxCnt + chunk - 1) / chunk
	for r := 0; r < rounds; r++ {
		cc := make([]int, len(counts))
		dd := make([]int, len(counts))
		for i := range counts {
			lo := r * chunk
			hi := lo + chunk
			if lo > counts[i] {
				lo = counts[i]
			}
			if hi > counts[i] {
				hi = counts[i]
			}
			cc[i] = hi - lo
			dd[i] = displs[i] + lo
		}
		if err := coll.AllgathervExplicit(bridge, buf, cc, dd); err != nil {
			return fmt.Errorf("hybrid: chunked round %d: %w", r, err)
		}
	}
	return nil
}

func maxInt(v []int) int {
	m := 0
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}
