package hybrid

import (
	"fmt"

	"repro/internal/coll"
	"repro/internal/mpi"
)

// Allreducer extends the paper's approach to MPI_Allreduce (named in its
// introduction as one of the important collectives, but not evaluated
// there): every rank writes its contribution into a per-rank slot of a
// shared input segment; the leader reduces the node's contributions
// locally, leaders allreduce across the bridge, and the node-shared
// result segment holds the single on-node copy of the answer.
type Allreducer struct {
	ctx     *Ctx
	count   int
	dt      mpi.Datatype
	inWin   *mpi.Win
	outWin  *mpi.Win
	in      mpi.Buf // node input segment: nodeSize * count elements
	out     mpi.Buf // node result segment: count elements
	scratch mpi.Buf
}

// NewAllreducer prepares a hybrid allreduce of count elements of dt.
func (c *Ctx) NewAllreducer(count int, dt mpi.Datatype) (*Allreducer, error) {
	if count < 0 {
		return nil, fmt.Errorf("hybrid: negative element count %d", count)
	}
	bytes := count * dt.Size()
	inWin, err := mpi.WinAllocateLeader(c.node, bytes*c.node.Size())
	if err != nil {
		return nil, err
	}
	outWin, err := mpi.WinAllocateLeader(c.node, bytes)
	if err != nil {
		return nil, err
	}
	return &Allreducer{
		ctx:     c,
		count:   count,
		dt:      dt,
		inWin:   inWin,
		outWin:  outWin,
		in:      inWin.Query(0).Slice(0, bytes*c.node.Size()),
		out:     outWin.Query(0).Slice(0, bytes),
		scratch: c.comm.Proc().World().NewBuf(bytes),
	}, nil
}

// Mine returns this rank's input slot (write your contribution here
// before calling Allreduce).
func (a *Allreducer) Mine() mpi.Buf {
	bytes := a.count * a.dt.Size()
	return a.in.Slice(a.ctx.node.Rank()*bytes, bytes)
}

// Result returns the node-shared result segment (valid after Allreduce).
func (a *Allreducer) Result() mpi.Buf { return a.out }

// Allreduce runs the timed operation: arrive-sync, leader-local node
// reduction (reads every on-node slot once), bridge allreduce, release
// sync.
func (a *Allreducer) Allreduce(op mpi.Op) error {
	c := a.ctx
	bytes := a.count * a.dt.Size()
	if err := c.Arrive(); err != nil {
		return fmt.Errorf("hybrid: allreduce arrive: %w", err)
	}
	if c.IsLeader() {
		p := c.node.Proc()
		// Fold the node's contributions into the result segment.
		p.CopyLocal(a.out, a.in.Slice(0, bytes), 1)
		for r := 1; r < c.node.Size(); r++ {
			slot := a.in.Slice(r*bytes, bytes)
			op.Apply(a.out, slot, a.count, a.dt)
			p.Compute(float64(a.count))
			p.TouchAll(bytes, 1)
		}
		if c.bridge != nil && c.bridge.Size() > 1 {
			if err := coll.Allreduce(c.bridge, a.out, a.scratch, a.count, a.dt, op); err != nil {
				return fmt.Errorf("hybrid: allreduce bridge phase: %w", err)
			}
			p.CopyLocal(a.out, a.scratch, 1)
		}
	}
	if err := c.Release(); err != nil {
		return fmt.Errorf("hybrid: allreduce release: %w", err)
	}
	return nil
}
