package hybrid

import (
	"fmt"
	"testing"

	"repro/internal/mpi"
)

func TestHyAlltoall(t *testing.T) {
	for _, shape := range [][]int{{4}, {2, 2}, {3, 3}, {4, 2, 3}} {
		t.Run(fmt.Sprint(shape), func(t *testing.T) {
			n := 0
			for _, s := range shape {
				n += s
			}
			runWorld(t, shape, func(p *mpi.Proc) error {
				ctx, err := New(p.CommWorld())
				if err != nil {
					return err
				}
				a, err := ctx.NewAlltoaller(8)
				if err != nil {
					return err
				}
				// Block for destination d carries 1000*me + d.
				row := a.MineSend()
				for d := 0; d < n; d++ {
					row.PutFloat64(d, float64(1000*p.Rank()+d))
				}
				if err := a.Alltoall(); err != nil {
					return err
				}
				got := a.MineRecv()
				for s := 0; s < n; s++ {
					want := float64(1000*s + p.Rank())
					if v := got.Float64At(s); v != want {
						t.Errorf("rank %d block from %d = %v, want %v", p.Rank(), s, v, want)
						return nil
					}
				}
				return nil
			})
		})
	}
}

func TestHyAlltoallRepeated(t *testing.T) {
	runWorld(t, []int{3, 3}, func(p *mpi.Proc) error {
		ctx, err := New(p.CommWorld())
		if err != nil {
			return err
		}
		a, err := ctx.NewAlltoaller(8)
		if err != nil {
			return err
		}
		for iter := 0; iter < 3; iter++ {
			row := a.MineSend()
			for d := 0; d < 6; d++ {
				row.PutFloat64(d, float64(iter*10000+1000*p.Rank()+d))
			}
			if err := a.Alltoall(); err != nil {
				return err
			}
			got := a.MineRecv()
			bad := ""
			for s := 0; s < 6; s++ {
				want := float64(iter*10000 + 1000*s + p.Rank())
				if v := got.Float64At(s); v != want {
					bad = fmt.Sprintf("iter %d from %d: %v != %v", iter, s, v, want)
					break
				}
			}
			// Epoch fence before the next write round.
			if err := ctx.Node().Barrier(); err != nil {
				return err
			}
			if bad != "" {
				return fmt.Errorf("stale alltoall read: %s", bad)
			}
		}
		return nil
	})
}

func TestHyAlltoallValidation(t *testing.T) {
	runWorld(t, []int{2}, func(p *mpi.Proc) error {
		ctx, err := New(p.CommWorld())
		if err != nil {
			return err
		}
		if _, err := ctx.NewAlltoaller(-1); err == nil {
			t.Error("negative block size accepted")
		}
		return nil
	})
}
