package hybrid

import (
	"fmt"

	"repro/internal/coll"
	"repro/internal/mpi"
)

// Bcaster is the hybrid MPI+MPI broadcast of the paper's Fig. 5/6: one
// shared segment per node holds the broadcast payload; the root writes
// it, leaders broadcast among themselves on the bridge, children just
// synchronize and read the shared copy.
type Bcaster struct {
	ctx *Ctx
	win *mpi.Win
	buf mpi.Buf
}

// NewBcaster allocates the per-node shared broadcast buffer of `size`
// bytes (one-off).
func (c *Ctx) NewBcaster(size int) (*Bcaster, error) {
	if size < 0 {
		return nil, fmt.Errorf("hybrid: negative bcast size %d", size)
	}
	win, err := mpi.WinAllocateLeader(c.node, size)
	if err != nil {
		return nil, err
	}
	return &Bcaster{ctx: c, win: win, buf: win.Query(0).Slice(0, size)}, nil
}

// Buffer returns the node's shared broadcast buffer. The root fills it
// before Bcast (Fig. 6 lines 1-2); every rank reads it afterwards.
func (b *Bcaster) Buffer() mpi.Buf { return b.buf }

// ReadFence separates one broadcast epoch's reads from the next one's
// root write — see Allgatherer.ReadFence for the write-after-read hazard
// it closes.
func (b *Bcaster) ReadFence() error { return b.ctx.node.Barrier() }

// Bcast runs the timed operation of Fig. 6: the inter-node broadcast
// over the bridge (rooted at the root's node) followed by one on-node
// synchronization so children know the shared data is ready. root is a
// comm rank; when the root is a child, its leader must additionally
// wait for the root's write, which costs one extra arrival sync on that
// node.
func (b *Bcaster) Bcast(root int) error {
	c := b.ctx
	if root < 0 || root >= c.comm.Size() {
		return fmt.Errorf("hybrid: bcast root %d out of range (size %d)", root, c.comm.Size())
	}
	rootSlot := c.SlotOf(root)
	rootNode := 0
	for n := 0; n < c.Nodes(); n++ {
		if rootSlot >= c.nodeFirst[n] && rootSlot < c.nodeFirst[n]+c.nodeSizes[n] {
			rootNode = n
			break
		}
	}

	// When the root is not its node's leader, the leader must wait
	// for the root's write to the shared buffer before sending it
	// across nodes. A single zero-byte flag message from root to
	// leader carries exactly that ordering (the "light-weight means"
	// of Sect. 6) and involves only the two ranks, so the rest of the
	// node keeps pipelining. (With the paper's root==leader setup
	// this phase vanishes.)
	rootIsChild := rootSlot != c.nodeFirst[rootNode]
	if rootIsChild && c.myNodeIdx == rootNode {
		switch {
		case c.comm.Rank() == root:
			if err := c.node.SendFlag(0, tagHybridFlag); err != nil {
				return fmt.Errorf("hybrid: bcast root flag: %w", err)
			}
		case c.IsLeader():
			rootNodeRank := rootSlot - c.nodeFirst[rootNode]
			if err := c.node.RecvFlag(rootNodeRank, tagHybridFlag); err != nil {
				return fmt.Errorf("hybrid: bcast leader flag: %w", err)
			}
		}
	}

	if c.Nodes() > 1 && c.bridge != nil {
		if err := coll.Bcast(c.bridge, b.buf, rootNode); err != nil {
			return fmt.Errorf("hybrid: bcast bridge phase: %w", err)
		}
	}

	// Fig. 6 lines 7/10/13: one synchronization so that all on-node
	// processes see the updated shared buffer.
	if err := c.Release(); err != nil {
		return fmt.Errorf("hybrid: bcast release: %w", err)
	}
	return nil
}
