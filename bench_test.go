package repro

// One testing.B benchmark per figure of the paper's evaluation section.
// Latencies in the simulator are *virtual* and deterministic, so each
// benchmark runs its measurement once and reports the figure's key
// series through b.ReportMetric (unit suffix "vus" = virtual
// microseconds). The full sweeps live in cmd/experiments; these
// benchmarks cover each figure's most telling points so that
// `go test -bench=.` regenerates the headline numbers quickly.

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/bpmf"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/summa"
)

func reportPair(b *testing.B, label string, hy, pure sim.Time) {
	b.Helper()
	b.ReportMetric(hy.Us(), label+"_hy_vus")
	b.ReportMetric(pure.Us(), label+"_pure_vus")
}

// BenchmarkFig7 measures the single-full-node allgather (24 ranks) at a
// small and a large message size on the Cray profile.
func BenchmarkFig7(b *testing.B) {
	model := sim.HazelHenCray()
	shape := []int{bench.CoresPerNode}
	for i := 0; i < b.N; i++ {
		for _, elems := range []int{1, 32768} {
			hy, err := bench.HyAllgatherLatency(model, shape, 8*elems, bench.MicroOpts{})
			if err != nil {
				b.Fatal(err)
			}
			pure, err := bench.PureAllgatherLatency(model, shape, 8*elems, bench.MicroOpts{})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				reportPair(b, fmt.Sprintf("e%d", elems), hy, pure)
			}
		}
	}
}

// BenchmarkFig8 measures the one-rank-per-node case at 64 nodes.
func BenchmarkFig8(b *testing.B) {
	model := sim.VulcanOpenMPI()
	shape := make([]int, 64)
	for i := range shape {
		shape[i] = 1
	}
	for i := 0; i < b.N; i++ {
		for _, elems := range []int{64, 16384} {
			hy, err := bench.HyAllgatherLatency(model, shape, 8*elems, bench.MicroOpts{})
			if err != nil {
				b.Fatal(err)
			}
			pure, err := bench.PureAllgatherLatency(model, shape, 8*elems, bench.MicroOpts{})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				reportPair(b, fmt.Sprintf("e%d", elems), hy, pure)
			}
		}
	}
}

// BenchmarkFig9 measures the 64-node, 24-ranks-per-node point (the
// paper's rightmost, largest-advantage configuration) at 512 elements.
func BenchmarkFig9(b *testing.B) {
	model := sim.HazelHenCray()
	shape := make([]int, 64)
	for i := range shape {
		shape[i] = 24
	}
	for i := 0; i < b.N; i++ {
		hy, err := bench.HyAllgatherLatency(model, shape, 8*512, bench.MicroOpts{Iters: 2})
		if err != nil {
			b.Fatal(err)
		}
		pure, err := bench.PureAllgatherLatency(model, shape, 8*512, bench.MicroOpts{Iters: 2})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportPair(b, "ppn24", hy, pure)
			b.ReportMetric(float64(pure)/float64(hy), "ratio")
		}
	}
}

// BenchmarkFig10 measures the irregularly populated configuration
// (42x24 + 1x16) at 1024 elements.
func BenchmarkFig10(b *testing.B) {
	model := sim.HazelHenCray()
	shape := bench.Fig10Shape()
	for i := 0; i < b.N; i++ {
		hy, err := bench.HyAllgatherLatency(model, shape, 8*1024, bench.MicroOpts{Iters: 2})
		if err != nil {
			b.Fatal(err)
		}
		pure, err := bench.PureAllgatherLatency(model, shape, 8*1024, bench.MicroOpts{Iters: 2})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportPair(b, "irregular", hy, pure)
			b.ReportMetric(float64(pure)/float64(hy), "ratio")
		}
	}
}

// BenchmarkFig11 measures SUMMA at the 8x8 single-node point (the
// paper's headline ~5x) and the 256x256 multi-node point (ratio -> 1).
func BenchmarkFig11(b *testing.B) {
	model := sim.HazelHenCray()
	cases := []struct {
		cores, block int
	}{{16, 8}, {256, 256}}
	for i := 0; i < b.N; i++ {
		for _, c := range cases {
			grid := 1
			for grid*grid < c.cores {
				grid++
			}
			topo, err := sim.NewTopology(bench.ShapeFor(c.cores))
			if err != nil {
				b.Fatal(err)
			}
			var times [2]sim.Time
			for j, hy := range []bool{false, true} {
				w, err := mpi.NewWorld(model, topo)
				if err != nil {
					b.Fatal(err)
				}
				res, err := summa.Run(w, summa.Config{GridDim: grid, BlockDim: c.block, Hybrid: hy})
				if err != nil {
					b.Fatal(err)
				}
				times[j] = res.Makespan
			}
			if i == 0 {
				label := fmt.Sprintf("c%db%d", c.cores, c.block)
				reportPair(b, label, times[1], times[0])
				b.ReportMetric(float64(times[0])/float64(times[1]), label+"_ratio")
			}
		}
	}
}

// BenchmarkFig12 measures the BPMF TotalTime ratio at 24 and 1024
// cores (the endpoints of the paper's rising curve).
func BenchmarkFig12(b *testing.B) {
	model := sim.HazelHenCray()
	for i := 0; i < b.N; i++ {
		for _, cores := range []int{24, 1024} {
			topo, err := sim.NewTopology(bench.ShapeFor(cores))
			if err != nil {
				b.Fatal(err)
			}
			var times [2]sim.Time
			for j, hy := range []bool{false, true} {
				w, err := mpi.NewWorld(model, topo)
				if err != nil {
					b.Fatal(err)
				}
				cfg := bench.Fig12Config()
				cfg.Hybrid = hy
				res, err := bpmf.Run(w, cfg)
				if err != nil {
					b.Fatal(err)
				}
				times[j] = res.Makespan
			}
			if i == 0 {
				b.ReportMetric(float64(times[0])/float64(times[1]), fmt.Sprintf("c%d_ratio", cores))
			}
		}
	}
}

// BenchmarkSyncFlavors is the ablation behind the paper's Sect. 6
// synchronization discussion: the hybrid allgather under the three sync
// flavors on one full node.
func BenchmarkSyncFlavors(b *testing.B) {
	model := sim.HazelHenCray()
	shape := []int{bench.CoresPerNode}
	flavors := []struct {
		name string
		mode int
	}{{"barrier", 0}, {"p2p", 1}, {"sharedflags", 2}}
	for i := 0; i < b.N; i++ {
		for _, f := range flavors {
			t, err := bench.HyAllgatherLatency(model, shape, 8*512, bench.MicroOpts{Sync: syncFromInt(f.mode)})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(t.Us(), f.name+"_vus")
			}
		}
	}
}
