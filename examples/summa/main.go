// SUMMA example: distributed matrix multiplication through the public
// API, in both flavors of the paper's Fig. 11.
//
// Runs a 4x4 process grid over two simulated nodes, verifies the
// product against a serial reference, and prints the Ori/Hy timing
// ratio for a few block sizes.
//
//	go run ./examples/summa
package main

import (
	"fmt"
	"log"

	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/summa"
)

func main() {
	topo := sim.MustUniform(2, 8) // 16 ranks over 2 nodes
	fmt.Println("SUMMA C = A x B on a 4x4 grid over", topo, "ranks (Cray profile)")

	// Verified small run with real data first: both flavors must
	// reproduce the serial product.
	for _, hy := range []bool{false, true} {
		w, err := mpi.NewWorld(sim.HazelHenCray(), topo, mpi.WithRealData())
		if err != nil {
			log.Fatal(err)
		}
		res, err := summa.Run(w, summa.Config{GridDim: 4, BlockDim: 8, Hybrid: hy, Verify: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  verify hybrid=%-5v: product correct = %v\n", hy, res.Verified)
	}

	// Timing sweep (size-only, so big blocks are cheap to simulate).
	fmt.Println("\n  block      Ori_SUMMA       Hy_SUMMA   ratio")
	for _, b := range []int{8, 32, 128, 512} {
		var times [2]sim.Time
		for i, hy := range []bool{false, true} {
			w, err := mpi.NewWorld(sim.HazelHenCray(), topo)
			if err != nil {
				log.Fatal(err)
			}
			res, err := summa.Run(w, summa.Config{GridDim: 4, BlockDim: b, Hybrid: hy})
			if err != nil {
				log.Fatal(err)
			}
			times[i] = res.Makespan
		}
		fmt.Printf("  %5d  %13v  %13v   %5.2f\n",
			b, times[0], times[1], float64(times[0])/float64(times[1]))
	}
}
