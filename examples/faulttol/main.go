// Fault-tolerant training loop: ULFM-style recovery from a mid-run
// rank failure, inside the simulator.
//
// Eight ranks run a checkpointed allreduce loop — the shape of a
// distributed training job or an iterative solver. The world's noise
// config schedules rank 3 to die partway through (a deterministic
// virtual-time deadline, so every run fails identically), and the
// survivors recover with the User-Level Failure Mitigation recipe:
//
//  1. an operation touching the dead rank fails with mpi.ErrRankFailed
//     (peers that raced ahead may see mpi.ErrRevoked instead — both
//     mean "this communicator is broken");
//  2. the rank that saw the failure first Revokes the communicator, so
//     every pending and future operation on it fails fast instead of
//     deadlocking;
//  3. all survivors Agree on whether the round committed — a
//     fault-tolerant logical AND that keeps ranks which finished the
//     round early from running ahead of ranks that saw it fail;
//  4. Shrink mints a working communicator over the survivors,
//     everyone rolls back to the round's checkpoint, and the loop
//     resumes one rank smaller.
//
// The example verifies the recovered run end to end: every survivor
// must hold the same final sum, equal to full-world rounds at the
// 8-rank contribution plus recovered rounds at the 7-rank one.
//
//	go run ./examples/faulttol
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"math"

	"repro/internal/mpi"
	"repro/internal/sim"
)

const (
	iters    = 10                    // loop rounds
	step     = 100 * sim.Microsecond // per-round local compute
	deadRank = 3
	failAt   = 520 * sim.Microsecond // rank 3 dies mid-run, deterministically
)

func main() {
	topo := sim.MustUniform(2, 4)
	n := topo.Size()
	noise := &sim.Noise{Failures: []sim.Failure{{Rank: deadRank, At: failAt}}}
	w, err := mpi.NewWorld(sim.Laptop(), topo, mpi.WithNoise(noise), mpi.WithRealData())
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()

	totals := make([]float64, n)
	fullRounds := make([]int, n) // rounds committed before the shrink
	err = w.Run(func(p *mpi.Proc) error {
		c := p.CommWorld()
		contribution := float64(p.Rank() + 1)
		var total float64
		full, shrunk := 0, false
		for it := 0; it < iters; {
			checkpoint := total
			p.Elapse(step) // rank 3 dies here once its clock passes failAt
			sum, err := allreduce(w, c, contribution, 2*it)
			if err != nil && !recoverable(err) {
				return err
			}
			if err != nil {
				// First observer: poison the communicator so peers still
				// parked in this round's sends/recvs wake immediately.
				c.Revoke()
			}
			// Commit barrier: the round counts only if EVERY survivor
			// completed it. Agree tolerates the dead member, so ranks
			// that finished before the failure surfaced cannot run ahead.
			ok, aerr := c.Agree(err == nil)
			if aerr != nil && !recoverable(aerr) {
				return aerr
			}
			if aerr == nil && ok {
				total += sum
				if !shrunk {
					full++
				}
				it++
				continue
			}
			// Recovery: survivors-only communicator, roll back, retry.
			nc, serr := c.Shrink()
			if serr != nil {
				return serr
			}
			c, total, shrunk = nc, checkpoint, true
		}
		totals[p.Rank()] = total
		fullRounds[p.Rank()] = full
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	if !w.Damaged() {
		log.Fatal("rank failure never fired")
	}
	if dead := w.DeadRanks(); len(dead) != 1 || dead[0] != deadRank {
		log.Fatalf("DeadRanks = %v, want [%d]", dead, deadRank)
	}
	fullSum := float64(n * (n + 1) / 2)
	liveSum := fullSum - float64(deadRank+1)
	full := fullRounds[0]
	if full < 1 || full >= iters {
		log.Fatalf("failure did not land mid-run: %d full-world rounds of %d", full, iters)
	}
	want := float64(full)*fullSum + float64(iters-full)*liveSum
	for r, got := range totals {
		if r == deadRank {
			continue
		}
		if fullRounds[r] != full {
			log.Fatalf("rank %d committed %d full-world rounds, rank 0 %d", r, fullRounds[r], full)
		}
		if got != want {
			log.Fatalf("rank %d final sum %.0f, want %.0f", r, got, want)
		}
	}
	fmt.Printf("rank %d died at its virtual deadline; %d survivors finished all %d rounds\n",
		deadRank, n-1, iters)
	fmt.Printf("  %d rounds at the full %d-rank sum, %d recovered rounds at %d ranks\n",
		full, n, iters-full, n-1)
	fmt.Printf("  every survivor holds %.0f (verified); virtual makespan %v\n",
		want, w.MaxClock())
}

// recoverable reports whether err is a failure the ULFM recipe can
// recover from, as opposed to a bug in the example.
func recoverable(err error) bool {
	return errors.Is(err, mpi.ErrRankFailed) || errors.Is(err, mpi.ErrRevoked)
}

// allreduce sums one contribution per comm member through comm rank 0.
// O(n) on purpose: every transfer is a plain Send/Recv whose failure
// returns an error the caller can recover from, which is the whole
// point here — and after a Shrink it keeps working at any comm size.
func allreduce(w *mpi.World, c *mpi.Comm, v float64, tag int) (float64, error) {
	buf := w.NewBuf(8)
	put := func(x float64) { binary.LittleEndian.PutUint64(buf.Raw(), math.Float64bits(x)) }
	get := func() float64 { return math.Float64frombits(binary.LittleEndian.Uint64(buf.Raw())) }
	if c.Rank() == 0 {
		sum := v
		for r := 1; r < c.Size(); r++ {
			if _, err := c.Recv(buf, r, tag); err != nil {
				return 0, err
			}
			sum += get()
		}
		put(sum)
		for r := 1; r < c.Size(); r++ {
			if err := c.Send(buf, r, tag+1); err != nil {
				return 0, err
			}
		}
		return sum, nil
	}
	put(v)
	if err := c.Send(buf, 0, tag); err != nil {
		return 0, err
	}
	if _, err := c.Recv(buf, 0, tag+1); err != nil {
		return 0, err
	}
	return get(), nil
}
