// Distributed k-means: a machine-learning kernel built on the hybrid
// collectives, showing how the paper's approach composes — an
// allreduce-style centroid update (hybrid.Allreducer) plus a broadcast
// of the new centroids (hybrid.Bcaster) per round, with one shared copy
// of the centroids per node.
//
// Each rank owns a slab of 2-D points drawn around hidden centers; the
// example runs Lloyd's iterations in the pure-MPI and hybrid flavors,
// checks they converge to identical centroids, and compares virtual
// time.
//
//	go run ./examples/kmeans
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/coll"
	"repro/internal/hybrid"
	"repro/internal/mpi"
	"repro/internal/sim"
)

const (
	k        = 4   // clusters
	dims     = 2   // point dimensionality
	perRank  = 500 // points per rank
	rounds   = 6
	stateLen = k * (dims + 1) // per-cluster: coordinate sums + count
)

func main() {
	topo := sim.MustUniform(3, 8)
	var finals [2][]float64
	var times [2]sim.Time
	for i, hy := range []bool{false, true} {
		cents, tm, err := run(topo, hy)
		if err != nil {
			log.Fatal(err)
		}
		finals[i] = cents
		times[i] = tm
	}
	// The two flavors reduce in different orders (node-local first vs
	// recursive doubling), so agreement is up to floating-point
	// reassociation only.
	for i := range finals[0] {
		if math.Abs(finals[0][i]-finals[1][i]) > 1e-9*(1+math.Abs(finals[0][i])) {
			log.Fatalf("flavors diverged at %d: %v vs %v", i, finals[0][i], finals[1][i])
		}
	}
	fmt.Println("k-means over", topo, "ranks,", perRank, "points each,", rounds, "rounds")
	fmt.Println("final centroids (both flavors identical):")
	for c := 0; c < k; c++ {
		fmt.Printf("  cluster %d: (%.3f, %.3f)\n", c, finals[0][c*dims], finals[0][c*dims+1])
	}
	fmt.Printf("pure MPI:       %v\n", times[0])
	fmt.Printf("hybrid MPI+MPI: %v\n", times[1])
}

func run(topo *sim.Topology, hy bool) ([]float64, sim.Time, error) {
	w, err := mpi.NewWorld(sim.HazelHenCray(), topo, mpi.WithRealData())
	if err != nil {
		return nil, 0, err
	}
	out := make([][]float64, topo.Size())
	err = w.Run(func(p *mpi.Proc) error {
		world := p.CommWorld()
		points := myPoints(p.Rank())
		cents := initialCentroids()

		var ctx *hybrid.Ctx
		var red *hybrid.Allreducer
		if hy {
			if ctx, err = hybrid.New(world); err != nil {
				return err
			}
			if red, err = ctx.NewAllreducer(statZero().Len()/8, mpi.Float64); err != nil {
				return err
			}
		}

		for r := 0; r < rounds; r++ {
			// Local assignment + partial sums.
			stats := assign(points, cents)
			p.Compute(float64(perRank * k * dims * 3))

			// Global reduction of the per-cluster sums/counts.
			var global mpi.Buf
			if hy {
				mpi.CopyData(red.Mine(), stats)
				if err := red.Allreduce(mpi.OpSum); err != nil {
					return err
				}
				global = red.Result()
			} else {
				global = mpi.Bytes(make([]byte, stats.Len()))
				if err := coll.Allreduce(world, stats, global, statsLenElems(), mpi.Float64, mpi.OpSum); err != nil {
					return err
				}
			}
			cents = recenter(global, cents)
			// The hybrid result segment is rewritten next round;
			// fence reads (cf. hybrid.Allgatherer.ReadFence).
			if hy {
				if err := ctx.Node().Barrier(); err != nil {
					return err
				}
			}
		}
		out[p.Rank()] = cents
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return out[0], w.MaxClock(), nil
}

func statsLenElems() int { return stateLen }

func statZero() mpi.Buf { return mpi.Bytes(make([]byte, 8*stateLen)) }

// myPoints generates this rank's slab around four hidden centers.
func myPoints(rank int) [][dims]float64 {
	centers := [][dims]float64{{0, 0}, {8, 1}, {2, 9}, {-6, 5}}
	pts := make([][dims]float64, perRank)
	// Deterministic low-discrepancy-ish scatter; no RNG needed.
	for i := range pts {
		c := centers[(rank+i)%k]
		f1 := math.Sin(float64(rank*7919+i)*0.7) * 1.5
		f2 := math.Cos(float64(rank*104729+i)*1.1) * 1.5
		pts[i] = [dims]float64{c[0] + f1, c[1] + f2}
	}
	return pts
}

func initialCentroids() []float64 {
	return []float64{-1, -1, 6, 0, 1, 7, -4, 4}
}

// assign buckets points to the nearest centroid and accumulates
// per-cluster coordinate sums and counts.
func assign(pts [][dims]float64, cents []float64) mpi.Buf {
	stats := statZero()
	for _, pt := range pts {
		best, bestD := 0, math.Inf(1)
		for c := 0; c < k; c++ {
			d := 0.0
			for j := 0; j < dims; j++ {
				diff := pt[j] - cents[c*dims+j]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = c, d
			}
		}
		base := best * (dims + 1)
		for j := 0; j < dims; j++ {
			stats.PutFloat64(base+j, stats.Float64At(base+j)+pt[j])
		}
		stats.PutFloat64(base+dims, stats.Float64At(base+dims)+1)
	}
	return stats
}

// recenter turns global sums/counts into new centroids (keeping the old
// centroid for empty clusters).
func recenter(global mpi.Buf, old []float64) []float64 {
	cents := make([]float64, k*dims)
	copy(cents, old)
	for c := 0; c < k; c++ {
		base := c * (dims + 1)
		count := global.Float64At(base + dims)
		if count == 0 {
			continue
		}
		for j := 0; j < dims; j++ {
			cents[c*dims+j] = global.Float64At(base+j) / count
		}
	}
	return cents
}
