// Quickstart: the paper's Fig. 4 in ~60 lines.
//
// Simulates a 2-node cluster with 4 ranks per node, builds the hybrid
// MPI+MPI context (shared-memory + bridge communicators), and runs the
// hybrid allgather: each rank writes its contribution straight into the
// node-shared buffer, only the two node leaders exchange data across
// the (virtual) network, and every rank then reads the full result from
// its node's single copy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/hybrid"
	"repro/internal/mpi"
	"repro/internal/sim"
)

func main() {
	topo := sim.MustUniform(2, 4) // 2 nodes x 4 ranks
	world, err := mpi.NewWorld(sim.Laptop(), topo, mpi.WithRealData())
	if err != nil {
		log.Fatal(err)
	}

	err = world.Run(func(p *mpi.Proc) error {
		// One-off setup: hierarchical communicators + shared window.
		ctx, err := hybrid.New(p.CommWorld())
		if err != nil {
			return err
		}
		ag, err := ctx.NewAllgatherer(8) // one float64 per rank
		if err != nil {
			return err
		}

		// Fig. 4 line 22: initialize my partition in place — this
		// write lands directly in the final result buffer.
		ag.Mine().PutFloat64(0, float64(100*p.Rank()))

		// The timed operation: sync, leaders exchange, sync.
		if err := ag.Allgather(); err != nil {
			return err
		}

		// Every rank now reads the node's single shared copy.
		if p.Rank() == 0 || p.Rank() == 7 {
			vals := make([]float64, p.Size())
			for r := range vals {
				vals[r] = ag.Block(r).Float64At(0)
			}
			fmt.Printf("rank %d (node %d, leader=%v) sees %v at virtual time %v\n",
				p.Rank(), p.Node(), ctx.IsLeader(), vals, p.Clock())
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("virtual makespan: %v\n", world.MaxClock())
}
