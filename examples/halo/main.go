// Halo exchange: the hybrid MPI+MPI motif that motivated the paper,
// now written on the process-topology API.
//
// Hoefler et al.'s MPI+MPI paper demonstrated point-to-point halo
// exchanges where on-node neighbours share memory directly; the ICPP'19
// paper generalizes the idea to collectives. This example shows both
// sides on a 1-D stencil ring:
//
//   - pure MPI: a periodic Cartesian communicator (mpi.CartCreate) and
//     one NeighborAlltoall per step exchange both borders — no
//     hand-wired Isend/Irecv, and the selection engine picks the halo
//     algorithm like for any collective;
//   - hybrid MPI+MPI: the whole node's sub-domain lives in one shared
//     window, so on-node borders need no copies at all — only the two
//     node-edge ranks talk to other nodes, synchronized by a node
//     barrier per step.
//
// The example runs both flavors over several steps, checks they compute
// identical stencil results, and prints the virtual-time gap. A third
// flavor overlaps a per-step residual norm (coll.Iallreduce) with the
// stencil update.
//
//	go run ./examples/halo
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/coll"
	"repro/internal/mpi"
	"repro/internal/sim"
)

const (
	cells = 64 // cells per rank
	steps = 8
)

func main() {
	topo := sim.MustUniform(2, 6)
	pure, err := runPure(topo)
	if err != nil {
		log.Fatal(err)
	}
	hy, err := runHybrid(topo)
	if err != nil {
		log.Fatal(err)
	}
	if pure.sum != hy.sum {
		log.Fatalf("flavors disagree: pure %v vs hybrid %v", pure.sum, hy.sum)
	}
	fmt.Printf("stencil checksum (both flavors): %.6f\n", pure.sum)
	fmt.Printf("pure MPI halo exchange:   %v\n", pure.time)
	fmt.Printf("hybrid MPI+MPI exchange:  %v\n", hy.time)
	fmt.Printf("hybrid saves %.1f%% of the virtual time\n",
		100*(1-float64(hy.time)/float64(pure.time)))

	// The third flavor adds a per-step global residual norm. Blocking,
	// the norm's allreduce serializes with the stencil update; with the
	// nonblocking schedule (coll.Iallreduce) the update runs while the
	// reduction is in flight.
	blockNorm, err := runNorm(topo, false)
	if err != nil {
		log.Fatal(err)
	}
	overlapNorm, err := runNorm(topo, true)
	if err != nil {
		log.Fatal(err)
	}
	if math.Abs(blockNorm.sum-overlapNorm.sum) > 1e-9 {
		log.Fatalf("norm flavors disagree: blocking %v vs overlapped %v",
			blockNorm.sum, overlapNorm.sum)
	}
	fmt.Printf("\nwith per-step residual norm (final %.6f):\n", blockNorm.sum)
	fmt.Printf("blocking Allreduce:       %v\n", blockNorm.time)
	fmt.Printf("overlapped Iallreduce:    %v\n", overlapNorm.time)
	fmt.Printf("overlap saves %.1f%% of the virtual time\n",
		100*(1-float64(overlapNorm.time)/float64(blockNorm.time)))
}

// haloRing builds the example's process topology: every rank on a
// periodic 1-D grid. reorder is off — the domain decomposition *is*
// the rank order here, and the determinism tests pin the unreordered
// timeline.
func haloRing(p *mpi.Proc) (*mpi.Comm, error) {
	return p.CommWorld().CartCreate([]int{p.Size()}, []bool{true}, false)
}

// exchangeBorders swaps both border cells with the grid neighbors in
// one NeighborAlltoall: send slot 0 (negative direction) carries the
// left border, slot 1 the right; the received negative slot is the
// left ghost, the positive slot the right ghost.
func exchangeBorders(ring *mpi.Comm, field []float64, send, recv mpi.Buf) (gl, gr float64, err error) {
	send.PutFloat64(0, field[0])
	send.PutFloat64(1, field[cells-1])
	if err := coll.NeighborAlltoall(ring, send, recv, 8); err != nil {
		return 0, 0, err
	}
	return recv.Float64At(0), recv.Float64At(1), nil
}

// runNorm is the pure-MPI stencil with a per-step global residual norm.
// With overlap, the norm reduction is posted as a nonblocking schedule
// before the (independent) stencil update and completed after it.
func runNorm(topo *sim.Topology, overlap bool) (outcome, error) {
	w, err := mpi.NewWorld(sim.Laptop(), topo, mpi.WithRealData())
	if err != nil {
		return outcome{}, err
	}
	norms := make([]float64, topo.Size())
	err = w.Run(func(p *mpi.Proc) error {
		c := p.CommWorld()
		ring, err := haloRing(p)
		if err != nil {
			return err
		}

		field := initField(p.Rank())
		var norm float64
		local := mpi.Bytes(make([]byte, 8))
		global := mpi.Bytes(make([]byte, 8))
		borders := mpi.Bytes(make([]byte, 16))
		ghosts := mpi.Bytes(make([]byte, 16))
		for s := 0; s < steps; s++ {
			local.PutFloat64(0, sum(field))
			var sched *mpi.Sched
			if overlap {
				// Post the norm reduction first: it only reads the
				// pre-exchange field, so it is independent of the
				// border exchange and the stencil update, and its
				// schedule progresses while both run.
				var err error
				sched, err = coll.Iallreduce(c, local, global, 1, mpi.Float64, mpi.OpSum)
				if err != nil {
					return err
				}
				if err := sched.Start(); err != nil {
					return err
				}
			} else if err := coll.Allreduce(c, local, global, 1, mpi.Float64, mpi.OpSum); err != nil {
				return err
			}
			gl, gr, err := exchangeBorders(ring, field, borders, ghosts)
			if err != nil {
				return err
			}
			field = relax(field, gl, gr)
			p.Compute(3 * cells)
			if sched != nil {
				if err := sched.Wait(); err != nil {
					return err
				}
			}
			norm = global.Float64At(0)
		}
		norms[p.Rank()] = norm
		return nil
	})
	if err != nil {
		return outcome{}, err
	}
	return outcome{time: w.MaxClock(), sum: norms[0]}, nil
}

type outcome struct {
	time sim.Time
	sum  float64
}

// runPure: classic ring stencil with private halo cells, borders
// exchanged by the neighborhood collective.
func runPure(topo *sim.Topology) (outcome, error) {
	w, err := mpi.NewWorld(sim.Laptop(), topo, mpi.WithRealData())
	if err != nil {
		return outcome{}, err
	}
	sums := make([]float64, topo.Size())
	err = w.Run(func(p *mpi.Proc) error {
		ring, err := haloRing(p)
		if err != nil {
			return err
		}
		field := initField(p.Rank())
		borders := mpi.Bytes(make([]byte, 16))
		ghosts := mpi.Bytes(make([]byte, 16))
		for s := 0; s < steps; s++ {
			gl, gr, err := exchangeBorders(ring, field, borders, ghosts)
			if err != nil {
				return err
			}
			field = relax(field, gl, gr)
			p.Compute(3 * cells) // the stencil update
		}
		sums[p.Rank()] = sum(field)
		return nil
	})
	if err != nil {
		return outcome{}, err
	}
	return outcome{time: w.MaxClock(), sum: total(sums)}, nil
}

// runHybrid: the node's sub-domain is one shared window; only node-edge
// ranks exchange borders across nodes.
func runHybrid(topo *sim.Topology) (outcome, error) {
	w, err := mpi.NewWorld(sim.Laptop(), topo, mpi.WithRealData())
	if err != nil {
		return outcome{}, err
	}
	sums := make([]float64, topo.Size())
	err = w.Run(func(p *mpi.Proc) error {
		world := p.CommWorld()
		node, err := world.SplitTypeShared()
		if err != nil {
			return err
		}
		// The node field: every rank contributes its cells plus two
		// ghost cells at the node edges (held by the leader's
		// segment head/tail).
		win, err := mpi.WinAllocateShared(node, 8*cells)
		if err != nil {
			return err
		}
		ghosts, err := mpi.WinAllocateShared(node, map[bool]int{true: 16, false: 0}[node.Rank() == 0])
		if err != nil {
			return err
		}
		nodeField := win.Whole() // node.Size()*cells values, shared
		gh := ghosts.Whole()     // [left ghost, right ghost]

		mine := win.Mine()
		seed := initField(p.Rank())
		for i, v := range seed {
			mine.PutFloat64(i, v)
		}

		n := p.Size()
		nodeCells := node.Size() * cells
		myOff := node.Rank() * cells
		for s := 0; s < steps; s++ {
			if err := node.Barrier(); err != nil { // writes done
				return err
			}
			// Node-edge ranks exchange the node borders.
			if node.Rank() == 0 {
				lb := mpi.FromFloat64s([]float64{nodeField.Float64At(0)})
				gl := mpi.Bytes(make([]byte, 8))
				left := (p.Rank() - 1 + n) % n
				if _, err := world.Sendrecv(lb, left, 2, gl, left, 1); err != nil {
					return err
				}
				gh.PutFloat64(0, gl.Float64At(0))
			}
			if node.Rank() == node.Size()-1 {
				rb := mpi.FromFloat64s([]float64{nodeField.Float64At(nodeCells - 1)})
				gr := mpi.Bytes(make([]byte, 8))
				right := (p.Rank() + 1) % n
				if _, err := world.Sendrecv(rb, right, 1, gr, right, 2); err != nil {
					return err
				}
				gh.PutFloat64(1, gr.Float64At(0))
			}
			if err := node.Barrier(); err != nil { // halos ready
				return err
			}
			// Read neighbours straight out of shared memory.
			var gl, gr float64
			if myOff == 0 {
				gl = gh.Float64At(0)
			} else {
				gl = nodeField.Float64At(myOff - 1)
			}
			if myOff+cells == nodeCells {
				gr = gh.Float64At(1)
			} else {
				gr = nodeField.Float64At(myOff + cells)
			}
			cur := make([]float64, cells)
			for i := range cur {
				cur[i] = nodeField.Float64At(myOff + i)
			}
			next := relax(cur, gl, gr)
			if err := node.Barrier(); err != nil { // reads done
				return err
			}
			for i, v := range next {
				mine.PutFloat64(i, v)
			}
			p.Compute(3 * cells)
		}
		if err := node.Barrier(); err != nil {
			return err
		}
		cur := make([]float64, cells)
		for i := range cur {
			cur[i] = win.Mine().Float64At(i)
		}
		sums[p.Rank()] = sum(cur)
		return nil
	})
	if err != nil {
		return outcome{}, err
	}
	return outcome{time: w.MaxClock(), sum: total(sums)}, nil
}

func initField(rank int) []float64 {
	f := make([]float64, cells)
	for i := range f {
		f[i] = float64(rank) + float64(i)*0.01
	}
	return f
}

// relax is one Jacobi smoothing step with ghost values at the ends.
func relax(f []float64, gl, gr float64) []float64 {
	out := make([]float64, len(f))
	for i := range f {
		l, r := gl, gr
		if i > 0 {
			l = f[i-1]
		}
		if i < len(f)-1 {
			r = f[i+1]
		}
		out[i] = 0.25*l + 0.5*f[i] + 0.25*r
	}
	return out
}

func sum(f []float64) float64 {
	s := 0.0
	for _, v := range f {
		s += v
	}
	return s
}

func total(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}
