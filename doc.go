// Package repro is a from-scratch Go reproduction of
//
//	Zhou, Gracia, Schneider: "MPI Collectives for Multi-core Clusters:
//	Optimized Performance of the Hybrid MPI+MPI Parallel Codes",
//	ICPP 2019 (arXiv:2007.06892).
//
// The repository builds everything the paper depends on — a
// deterministic virtual-time cluster simulator (internal/sim), an
// MPI-like runtime with communicators, point-to-point messaging and
// MPI-3 shared-memory windows (internal/mpi), the classic pure-MPI
// collective algorithms with library-style tuning (internal/coll), the
// paper's hybrid MPI+MPI collectives (internal/hybrid), dense linear
// algebra (internal/la), and the two application benchmarks, SUMMA
// (internal/summa) and BPMF (internal/bpmf) — plus a harness that
// regenerates every figure of the evaluation (internal/bench,
// cmd/experiments).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. The root-level benchmarks (bench_test.go) expose one
// testing.B entry per figure.
package repro
