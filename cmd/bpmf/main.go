// Command bpmf runs the BPMF application benchmark (Fig. 12): the
// TotalTime ratio of Ori_BPMF (pure-MPI allgather) to Hy_BPMF (hybrid
// allgather) over 20 Gibbs iterations on a chembl_20-shaped synthetic
// dataset.
//
// Usage:
//
//	bpmf                    # the full Fig. 12 sweep
//	bpmf -cores 240         # one point
//	bpmf -cores 16 -real    # actually sample (small scale), report RMSE
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/bpmf"
	"repro/internal/mpi"
	"repro/internal/sim"
	// Blank import: installs the REPRO_COLL_TUNING environment
	// compatibility shim (the tuning grammar lives in internal/spec).
	_ "repro/internal/spec"
)

func main() {
	cores := flag.Int("cores", 0, "single point: core count; 0 = full Fig. 12 sweep")
	real := flag.Bool("real", false, "run the actual Gibbs sampler (small scale) and report RMSE")
	iters := flag.Int("iters", 0, "Gibbs iterations (default 20, the paper's setting)")
	machine := flag.String("machine", "hazelhen-cray", "machine profile")
	flag.Parse()

	if *cores == 0 {
		t, err := bench.Fig12(bench.FigOpts{})
		if err != nil {
			fatal(err)
		}
		if err := t.Fprint(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if err := runPoint(*machine, *cores, *real, *iters); err != nil {
		fatal(err)
	}
}

func runPoint(machine string, cores int, real bool, iters int) error {
	mk, ok := sim.Profiles()[machine]
	if !ok {
		return fmt.Errorf("unknown machine %q", machine)
	}
	topo, err := sim.NewTopology(bench.ShapeFor(cores))
	if err != nil {
		return err
	}
	cfg := bench.Fig12Config()
	if real {
		// Shrink to something a laptop can actually sample.
		cfg.Users, cfg.Items, cfg.Iters = 960, 240, 5
		cfg.Real = true
	}
	if iters > 0 {
		cfg.Iters = iters
	}
	for _, hy := range []bool{false, true} {
		var opts []mpi.Option
		if real {
			opts = append(opts, mpi.WithRealData())
		}
		w, err := mpi.NewWorld(mk(), topo, opts...)
		if err != nil {
			return err
		}
		c := cfg
		c.Hybrid = hy
		res, err := bpmf.Run(w, c)
		if err != nil {
			return err
		}
		name := "Ori_BPMF"
		if hy {
			name = "Hy_BPMF"
		}
		fmt.Printf("%-9s cores=%d iters=%d: TotalTime %10.1f ms", name, cores, c.Iters, res.Makespan.Ms())
		if real && len(res.RMSE) > 0 {
			fmt.Printf("  RMSE %.4f -> %.4f", res.RMSE[0], res.RMSE[len(res.RMSE)-1])
		}
		fmt.Println()
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bpmf:", err)
	os.Exit(1)
}
