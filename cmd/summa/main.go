// Command summa runs the SUMMA application benchmark (Fig. 11):
// Ori_SUMMA (pure-MPI broadcasts) vs Hy_SUMMA (hybrid broadcasts) on the
// simulated Cray profile.
//
// Usage:
//
//	summa                # the full Fig. 11 sweep (all four panels)
//	summa -block 64      # one panel
//	summa -cores 256 -block 128 -verify=false   # one point
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/summa"
	// Blank import: installs the REPRO_COLL_TUNING environment
	// compatibility shim (the tuning grammar lives in internal/spec).
	_ "repro/internal/spec"
)

func main() {
	block := flag.Int("block", 0, "per-core block size b (panel); 0 = all of 8, 64, 128, 256")
	cores := flag.Int("cores", 0, "single point: core count (perfect square); 0 = full sweep")
	verify := flag.Bool("verify", false, "run with real data and verify the product (small sizes)")
	machine := flag.String("machine", "hazelhen-cray", "machine profile")
	flag.Parse()

	if *cores != 0 {
		if err := runPoint(*machine, *cores, pick(*block, 64), *verify); err != nil {
			fatal(err)
		}
		return
	}
	tables, err := bench.Fig11(bench.FigOpts{})
	if err != nil {
		fatal(err)
	}
	for _, t := range tables {
		if *block != 0 && !containsBlock(t.Name, *block) {
			continue
		}
		if err := t.Fprint(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func containsBlock(name string, b int) bool {
	return strings.Contains(name, fmt.Sprintf("(%dx%d ", b, b))
}

func pick(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

func runPoint(machine string, cores, block int, verify bool) error {
	mk, ok := sim.Profiles()[machine]
	if !ok {
		return fmt.Errorf("unknown machine %q", machine)
	}
	grid := 1
	for grid*grid < cores {
		grid++
	}
	if grid*grid != cores {
		return fmt.Errorf("cores %d is not a perfect square", cores)
	}
	topo, err := sim.NewTopology(bench.ShapeFor(cores))
	if err != nil {
		return err
	}
	for _, hy := range []bool{false, true} {
		var opts []mpi.Option
		if verify {
			opts = append(opts, mpi.WithRealData())
		}
		w, err := mpi.NewWorld(mk(), topo, opts...)
		if err != nil {
			return err
		}
		res, err := summa.Run(w, summa.Config{GridDim: grid, BlockDim: block, Hybrid: hy, Verify: verify})
		if err != nil {
			return err
		}
		name := "Ori_SUMMA"
		if hy {
			name = "Hy_SUMMA"
		}
		fmt.Printf("%-10s cores=%d b=%d: %12.2f us", name, cores, block, res.Makespan.Us())
		if verify {
			fmt.Printf("  verified=%v", res.Verified)
		}
		fmt.Println()
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "summa:", err)
	os.Exit(1)
}
