// Command perf measures the wall-clock (host time, not virtual time)
// cost of figure-scale simulator runs and writes a BENCH_*.json report,
// so the repository carries a perf trajectory across PRs.
//
// Usage:
//
//	go run ./cmd/perf -out BENCH_PR1.json [-baseline old.json] [-case regexp]
//	go run ./cmd/perf -check -baseline BENCH_PR1.json [-case regexp]
//	go run ./cmd/perf -sweep [-tuning policy=cost,...] -out BENCH_PR2.json
//
// With -baseline, the old report's numbers are embedded alongside the
// new ones and per-case ns/op speedups are computed. With -check, the
// run becomes a CI perf-regression gate: it exits non-zero when any
// case is more than -maxslow times slower than the baseline (generous,
// for noisy CI hosts) or exceeds the strict allocs/op ceiling
// (allocations are deterministic, so they barely get slack). With
// -sweep, the report additionally records the collective selection
// engine's algorithm choices and crossover points per message size.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"repro/internal/bench"
	"repro/internal/coll"
	"repro/internal/sim"
)

func main() {
	out := flag.String("out", "", "write the JSON report to this path")
	baselinePath := flag.String("baseline", "", "compare against a previous report")
	caseRe := flag.String("case", "", "only run cases matching this regexp")
	check := flag.Bool("check", false, "fail (exit 1) on regression vs -baseline")
	maxSlow := flag.Float64("maxslow", 3.0, "-check: max allowed ns/op slowdown factor")
	allocSlack := flag.Float64("allocslack", 1.10, "-check: allocs/op ceiling factor over baseline")
	sweep := flag.Bool("sweep", false, "record the collective algorithm-selection sweep")
	tuningSpec := flag.String("tuning", "policy=cost",
		"coll tuning spec for the sweep (see REPRO_COLL_TUNING)")
	machine := flag.String("machine", "hazelhen-cray", "machine profile for the sweep")
	flag.Parse()

	var re *regexp.Regexp
	if *caseRe != "" {
		var err error
		if re, err = regexp.Compile(*caseRe); err != nil {
			fatal(err)
		}
	}

	var baseline *bench.WallReport
	if *baselinePath != "" {
		var err error
		if baseline, err = bench.LoadWallReport(*baselinePath); err != nil {
			fatal(err)
		}
	}
	if *check && baseline == nil {
		fatal(fmt.Errorf("-check needs -baseline"))
	}

	rep, err := run(re, baseline)
	if err != nil {
		fatal(err)
	}

	if *sweep {
		tun, err := coll.ParseTuning(*tuningSpec)
		if err != nil {
			fatal(err)
		}
		mk, ok := sim.Profiles()[*machine]
		if !ok {
			fatal(fmt.Errorf("unknown machine %q", *machine))
		}
		rep.CollSweep = bench.RunCollSweep(mk(), tun)
		printSweep(rep.CollSweep)
		if rep.TopoSweep, err = bench.RunTopoSweep(mk(), tun); err != nil {
			fatal(err)
		}
		printTopoSweep(rep.TopoSweep)
	}

	if *out != "" {
		if err := rep.WriteWallReport(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *check {
		if violations := rep.CheckAgainst(baseline, *maxSlow, *allocSlack); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "perf regression:", v)
			}
			os.Exit(1)
		}
		fmt.Printf("perf check passed vs %s (max slowdown %.1fx, alloc slack %.2fx)\n",
			*baselinePath, *maxSlow, *allocSlack)
	}
}

func run(re *regexp.Regexp, baseline *bench.WallReport) (*bench.WallReport, error) {
	var filter func(string) bool
	if re != nil {
		filter = re.MatchString
	}
	rep, err := bench.RunWallCases(filter)
	if err != nil {
		return nil, err
	}
	if baseline != nil {
		rep.CompareTo(baseline)
	}
	print(rep)
	return rep, nil
}

func print(rep *bench.WallReport) {
	fmt.Printf("%-28s %14s %12s %12s %8s %10s\n",
		"case", "ns/op", "allocs/op", "B/op", "peakG", "virtual_us")
	for _, r := range rep.Results {
		fmt.Printf("%-28s %14.0f %12.0f %12.0f %8d %10.2f\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.PeakGoroutines, r.VirtualUs)
		if s, ok := rep.Speedup[r.Name]; ok {
			fmt.Printf("%-28s %13.2fx vs baseline\n", "", s)
		}
	}
}

func printSweep(s *bench.CollSweepReport) {
	fmt.Printf("\ncoll-sweep (%s, policy %s): %d points, crossovers:\n",
		s.Model, s.Policy, len(s.Points))
	for _, x := range s.Crossovers {
		fmt.Printf("  %-10s n=%-3d %s: %s -> %s at %d B\n",
			x.Collective, x.CommSize, x.Hop, x.From, x.To, x.AtBytes)
	}
}

func printTopoSweep(s *bench.TopoSweepReport) {
	fmt.Printf("\ntopo-sweep (%s, policy %s): %d points (levels x ppn):\n",
		s.Model, s.Policy, len(s.Points))
	for _, p := range s.Points {
		fmt.Printf("  %-18s %dx%-3d %8dB  hier %10.2f us  hybrid(%s) %10.2f us\n",
			p.Stack, p.Nodes, p.PPN, p.Bytes, p.HierUs, p.SharedLevel, p.HybridUs)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perf:", err)
	os.Exit(1)
}
