// Command perf measures the wall-clock (host time, not virtual time)
// cost of figure-scale simulator runs and writes a BENCH_*.json report,
// so the repository carries a perf trajectory across PRs.
//
// Usage:
//
//	go run ./cmd/perf -out BENCH_PR1.json [-baseline old.json] [-case regexp]
//	go run ./cmd/perf -check -baseline BENCH_PR1.json [-case regexp]
//	go run ./cmd/perf -sweep coll,topo,scale [-tuning policy=cost,...] -out BENCH_PR4.json
//	go run ./cmd/perf -sweep noise [-noiseseed 42] -out BENCH_PR9.json
//	go run ./cmd/perf -sweep scale -scalemax 8192 [-cpuprofile cpu.pprof]
//	go run ./cmd/perf -spec query.json
//	go run ./cmd/perf -collective allgather -shape 64x24 -sizes 64,4096
//
// The last two forms are query mode: instead of benchmarking the
// simulator, perf executes one declarative spec.Query — from a JSON
// file (-spec) or assembled from flags (-collective, -shape, -sizes,
// -iters, -fold plus the shared -machine, -engine, -tuning) — and
// prints the spec.Result as JSON. The same Query posted to cmd/serverd
// returns a bit-identical result; with -engine both, query mode runs
// both execution backends and fails unless their virtual times agree
// exactly.
//
// With -baseline, the old report's numbers are embedded alongside the
// new ones and per-case ns/op speedups are computed. With -check, the
// run becomes a CI perf-regression gate: it exits non-zero when any
// case is more than -maxslow times slower than the baseline (generous,
// for noisy CI hosts) or exceeds the strict allocs/op ceiling
// (allocations are deterministic, so they barely get slack).
//
// -sweep selects extra report dimensions (comma-separated, or "all"):
//
//	coll     the collective selection engine's algorithm choices and
//	         crossover points per message size
//	topo     the multi-level topology dimension (levels x ppn)
//	scale    the scale-out dimension: size-only allgather/allreduce up
//	         to -scalemax ranks, recording ns/op, peak goroutines,
//	         peak RSS
//	stencil  the process-topology dimension: 4-dim grid halo exchanges
//	         (CartCreate + NeighborAlltoall) per halo width up to
//	         -scalemax ranks
//	tuned    the measured-selection dimension: a congested allreduce
//	         ladder under the table, cost and measured tuning policies,
//	         with the tuning store's persistence round trip and the
//	         warm-path determinism verdict in the loop
//
// -cpuprofile / -memprofile write pprof profiles covering the whole
// run (cases plus sweeps), for digging into control-plane hot spots.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/sim"
	"repro/internal/spec"
)

func main() {
	out := flag.String("out", "", "write the JSON report to this path")
	baselinePath := flag.String("baseline", "", "compare against a previous report")
	caseRe := flag.String("case", "", "only run cases matching this regexp")
	check := flag.Bool("check", false, "fail (exit 1) on regression vs -baseline")
	maxSlow := flag.Float64("maxslow", 3.0, "-check: max allowed ns/op slowdown factor")
	allocSlack := flag.Float64("allocslack", 1.10, "-check: allocs/op ceiling factor over baseline")
	sweep := flag.String("sweep", "", "extra sweep dimensions: coll,topo,scale,stencil,service,noise,tuned or all")
	scaleMax := flag.Int("scalemax", 65536, "scale sweep: largest rank count to run")
	noiseSeed := flag.Int64("noiseseed", 42, "noise sweep: seed keying every noisy level")
	engineSpec := flag.String("engine", "both",
		"scale sweep execution backend: goroutine, event or both")
	tuningSpec := flag.String("tuning", "policy=cost",
		"coll tuning spec for the sweep (see REPRO_COLL_TUNING)")
	machine := flag.String("machine", "hazelhen-cray", "machine profile for the sweep")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path")
	specPath := flag.String("spec", "", "query mode: run the spec.Query in this JSON file")
	collective := flag.String("collective", "", "query mode: collective to simulate (enables query mode)")
	shape := flag.String("shape", "4x8", "query mode: topology as NODESxPPN")
	sizesSpec := flag.String("sizes", "1024", "query mode: comma-separated size ladder in bytes")
	iters := flag.Int("iters", 1, "query mode: operations per ladder point")
	fold := flag.String("fold", "", "query mode: rank-symmetry folding: auto, off or a unit")
	flag.Parse()

	if *specPath != "" || *collective != "" {
		if err := runQueryMode(*specPath, *collective, *shape, *sizesSpec,
			*machine, *engineSpec, *tuningSpec, *fold, *iters, *out); err != nil {
			fatal(err)
		}
		return
	}

	dims, err := parseSweep(*sweep)
	if err != nil {
		fatal(err)
	}

	var re *regexp.Regexp
	if *caseRe != "" {
		if re, err = regexp.Compile(*caseRe); err != nil {
			fatal(err)
		}
	}

	var baseline *bench.WallReport
	if *baselinePath != "" {
		if baseline, err = bench.LoadWallReport(*baselinePath); err != nil {
			fatal(err)
		}
	}
	if *check && baseline == nil {
		fatal(fmt.Errorf("-check needs -baseline"))
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		// fatal() and the -check exit both flush through stopCPUProfile:
		// a deferred stop would be skipped by os.Exit, truncating the
		// profile exactly when a regression is being investigated.
		stopCPUProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
			stopCPUProfile = func() {}
		}
		defer stopCPUProfile()
	}

	rep, err := run(re, baseline)
	if err != nil {
		fatal(err)
	}

	if len(dims) > 0 {
		st, err := spec.ParseTuning(*tuningSpec)
		if err != nil {
			fatal(err)
		}
		tun, err := st.Coll()
		if err != nil {
			fatal(err)
		}
		mk, ok := sim.Profiles()[*machine]
		if !ok {
			fatal(fmt.Errorf("unknown machine %q", *machine))
		}
		if dims["coll"] {
			rep.CollSweep = bench.RunCollSweep(mk(), tun)
			printSweep(rep.CollSweep)
		}
		if dims["topo"] {
			if rep.TopoSweep, err = bench.RunTopoSweep(mk(), tun); err != nil {
				fatal(err)
			}
			printTopoSweep(rep.TopoSweep)
		}
		if dims["scale"] {
			engines, err := parseEngines(*engineSpec)
			if err != nil {
				fatal(err)
			}
			if rep.ScaleSweep, err = bench.RunScaleSweep(mk(), *scaleMax, engines); err != nil {
				fatal(err)
			}
			printScaleSweep(rep.ScaleSweep)
		}
		if dims["stencil"] {
			if rep.StencilSweep, err = bench.RunStencilSweep(mk(), *scaleMax); err != nil {
				fatal(err)
			}
			printStencilSweep(rep.StencilSweep)
		}
		if dims["service"] {
			if rep.ServiceSweep, err = bench.RunServiceSweep(*machine, 0); err != nil {
				fatal(err)
			}
			printServiceSweep(rep.ServiceSweep)
		}
		if dims["noise"] {
			if rep.NoiseSweep, err = bench.RunNoiseSweep(*machine, *noiseSeed); err != nil {
				fatal(err)
			}
			printNoiseSweep(rep.NoiseSweep)
		}
		if dims["tuned"] {
			if rep.TunedSweep, err = bench.RunTunedSweep(*machine, *noiseSeed); err != nil {
				fatal(err)
			}
			printTunedSweep(rep.TunedSweep)
		}
	}

	if *out != "" {
		if err := rep.WriteWallReport(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	if *check {
		if violations := rep.CheckAgainst(baseline, *maxSlow, *allocSlack); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "perf regression:", v)
			}
			stopCPUProfile()
			os.Exit(1)
		}
		fmt.Printf("perf check passed vs %s (max slowdown %.1fx, alloc slack %.2fx)\n",
			*baselinePath, *maxSlow, *allocSlack)
	}
}

// runQueryMode executes one declarative spec.Query — loaded from
// specPath, or assembled from the query-mode flags — and prints the
// spec.Result as indented JSON (to out when given, stdout otherwise).
// A flag-built query with engine "both" runs on both backends and
// fails unless every point's virtual time is bit-identical.
func runQueryMode(specPath, collective, shape, sizesSpec, machine, engineSpec, tuningSpec, fold string, iters int, out string) error {
	var q *spec.Query
	if specPath != "" {
		if collective != "" {
			return fmt.Errorf("-spec and -collective are mutually exclusive")
		}
		data, err := os.ReadFile(specPath)
		if err != nil {
			return err
		}
		if q, err = spec.Parse(data); err != nil {
			return err
		}
	} else {
		var err error
		if q, err = queryFromFlags(collective, shape, sizesSpec, machine, engineSpec, tuningSpec, fold, iters); err != nil {
			return err
		}
		if engineSpec == "both" {
			// Cross-engine check: the event backend must reproduce the
			// goroutine backend's virtual times exactly.
			alt := *q
			alt.Sizes = append([]int(nil), q.Sizes...)
			alt.Engine = sim.EngineEvent.String()
			q.Engine = sim.EngineGoroutine.String()
			res, altRes, err := runBoth(q, &alt)
			if err != nil {
				return err
			}
			for i := range res.Points {
				if res.Points[i].VirtualPs != altRes.Points[i].VirtualPs {
					return fmt.Errorf("engines disagree at %d B: goroutine %d ps, event %d ps",
						res.Points[i].Bytes, res.Points[i].VirtualPs, altRes.Points[i].VirtualPs)
				}
			}
			fmt.Fprintln(os.Stderr, "engines agree bit-identically")
			return printResult(res, out)
		}
	}
	res, err := spec.Run(q)
	if err != nil {
		return err
	}
	return printResult(res, out)
}

// runBoth executes the two engine variants of one query.
func runBoth(a, b *spec.Query) (*spec.Result, *spec.Result, error) {
	ra, err := spec.Run(a)
	if err != nil {
		return nil, nil, err
	}
	rb, err := spec.Run(b)
	if err != nil {
		return nil, nil, err
	}
	return ra, rb, nil
}

// queryFromFlags assembles a Query from the query-mode flag surface.
func queryFromFlags(collective, shape, sizesSpec, machine, engineSpec, tuningSpec, fold string, iters int) (*spec.Query, error) {
	nodes, ppn, ok := strings.Cut(shape, "x")
	if !ok {
		return nil, fmt.Errorf("-shape %q is not NODESxPPN", shape)
	}
	n, err := strconv.Atoi(nodes)
	if err != nil {
		return nil, fmt.Errorf("-shape: %w", err)
	}
	p, err := strconv.Atoi(ppn)
	if err != nil {
		return nil, fmt.Errorf("-shape: %w", err)
	}
	var sizes []int
	for _, s := range strings.Split(sizesSpec, ",") {
		b, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("-sizes: %w", err)
		}
		sizes = append(sizes, b)
	}
	tun, err := spec.ParseTuning(tuningSpec)
	if err != nil {
		return nil, err
	}
	q := &spec.Query{
		Machine:    machine,
		Topology:   spec.Topology{Nodes: n, PPN: p},
		Collective: collective,
		Sizes:      sizes,
		Iters:      iters,
		Fold:       fold,
		Tuning:     tun,
	}
	if engineSpec != "both" && engineSpec != "" {
		q.Engine = engineSpec
	}
	if err := q.Canonicalize(); err != nil {
		return nil, err
	}
	return q, nil
}

// printResult writes the Result as indented JSON.
func printResult(res *spec.Result, out string) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out != "" {
		return os.WriteFile(out, data, 0o644)
	}
	_, err = os.Stdout.Write(data)
	return err
}

// parseSweep resolves the -sweep dimension list. The historical bare
// boolean form ("-sweep" with no value) is gone; "all" selects every
// dimension.
func parseSweep(spec string) (map[string]bool, error) {
	dims := map[string]bool{}
	if spec == "" {
		return dims, nil
	}
	if spec == "all" {
		return map[string]bool{"coll": true, "topo": true, "scale": true, "stencil": true, "service": true, "noise": true, "tuned": true}, nil
	}
	for _, d := range strings.Split(spec, ",") {
		switch d = strings.TrimSpace(d); d {
		case "coll", "topo", "scale", "stencil", "service", "noise", "tuned":
			dims[d] = true
		default:
			return nil, fmt.Errorf("unknown sweep dimension %q (want coll, topo, scale, stencil, service, noise, tuned or all)", d)
		}
	}
	return dims, nil
}

func run(re *regexp.Regexp, baseline *bench.WallReport) (*bench.WallReport, error) {
	var filter func(string) bool
	if re != nil {
		filter = re.MatchString
	}
	rep, err := bench.RunWallCases(filter)
	if err != nil {
		return nil, err
	}
	if baseline != nil {
		rep.CompareTo(baseline)
	}
	print(rep)
	return rep, nil
}

func print(rep *bench.WallReport) {
	fmt.Printf("%-28s %14s %12s %12s %8s %10s\n",
		"case", "ns/op", "allocs/op", "B/op", "peakG", "virtual_us")
	for _, r := range rep.Results {
		fmt.Printf("%-28s %14.0f %12.0f %12.0f %8d %10.2f\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.PeakGoroutines, r.VirtualUs)
		if s, ok := rep.Speedup[r.Name]; ok {
			fmt.Printf("%-28s %13.2fx vs baseline\n", "", s)
		}
	}
}

func printSweep(s *bench.CollSweepReport) {
	fmt.Printf("\ncoll-sweep (%s, policy %s): %d points, crossovers:\n",
		s.Model, s.Policy, len(s.Points))
	for _, x := range s.Crossovers {
		fmt.Printf("  %-10s n=%-3d %s: %s -> %s at %d B\n",
			x.Collective, x.CommSize, x.Hop, x.From, x.To, x.AtBytes)
	}
}

func printTopoSweep(s *bench.TopoSweepReport) {
	fmt.Printf("\ntopo-sweep (%s, policy %s): %d points (levels x ppn):\n",
		s.Model, s.Policy, len(s.Points))
	for _, p := range s.Points {
		fmt.Printf("  %-18s %dx%-3d %8dB  hier %10.2f us  hybrid(%s) %10.2f us\n",
			p.Stack, p.Nodes, p.PPN, p.Bytes, p.HierUs, p.SharedLevel, p.HybridUs)
	}
}

// parseEngines resolves the -engine flag into the backend list handed
// to the scale sweep ("both" runs goroutine then event, letting the
// sweep cross-check their virtual timelines).
func parseEngines(spec string) ([]sim.Engine, error) {
	if spec == "" || spec == "both" {
		return []sim.Engine{sim.EngineGoroutine, sim.EngineEvent}, nil
	}
	e, err := sim.ParseEngine(spec)
	if err != nil {
		return nil, fmt.Errorf("-engine: %w (or \"both\")", err)
	}
	return []sim.Engine{e}, nil
}

func printScaleSweep(s *bench.ScaleSweepReport) {
	fmt.Printf("\nscale-sweep (%s, up to %d ranks):\n", s.Model, s.MaxRanks)
	for _, p := range s.Points {
		fold := ""
		if p.FoldUnit > 0 {
			fold = fmt.Sprintf(" fold %d", p.FoldUnit)
		}
		fmt.Printf("  %-10s %5dx%-3d %7d ranks %-9s %10.1f ms/op  peakG %7d  peakRSS %5.0f MiB  virtual %10.2f us%s\n",
			p.Coll, p.Nodes, p.PPN, p.Ranks, p.Engine, p.NsPerOp/1e6, p.PeakGoroutines,
			float64(p.PeakRSSBytes)/(1<<20), p.VirtualUs, fold)
	}
}

func printStencilSweep(s *bench.StencilSweepReport) {
	fmt.Printf("\nstencil-sweep (%s, up to %d ranks):\n", s.Model, s.MaxRanks)
	for _, p := range s.Points {
		fmt.Printf("  %-12s %7d ranks  halo %4dB %10.1f ms/op  setup %7.0f ms  peakG %7d  virtual %10.2f us\n",
			p.Dims, p.Ranks, p.HaloBytes, p.NsPerOp/1e6, p.SetupNs/1e6, p.PeakGoroutines, p.VirtualUs)
	}
}

func printServiceSweep(s *bench.ServiceSweepReport) {
	fmt.Printf("\nservice-sweep (%s, %d unique queries, cache hit ratio %.3f, coalesced %d, cli/http bit-identical %v):\n",
		s.Machine, s.UniqueQueries, s.CacheHitRatio, s.Coalesced, s.BitIdentical)
	for _, p := range s.Points {
		fmt.Printf("  %3d clients %7d reqs %10.0f qps  p50 %7.0f us  p99 %7.0f us\n",
			p.Clients, p.Requests, p.QPS, p.P50Us, p.P99Us)
	}
	if c := s.ColdShape; c != nil {
		fmt.Printf("  cold shape %s (%d distinct queries, pool hit ratio %.3f, pooled/cold bit-identical %v):\n",
			c.Shape, c.Queries, c.PoolHitRatio, c.BitIdentical)
		fmt.Printf("    point p50: pooled %7.0f us  per-point %7.0f us  speedup %.2fx\n",
			c.PooledP50Us, c.PerPointP50Us, c.P50Speedup)
		fmt.Printf("    %2d-size sweep: pooled %7.1f ms  per-point %7.1f ms  speedup %.2fx\n",
			c.SweepSizes, c.PooledSweepMs, c.PerPointSweepMs, c.SweepSpeedup)
	}
}

func printNoiseSweep(s *bench.NoiseSweepReport) {
	fmt.Printf("\nnoise-sweep (%s, %s %dx%d, seed %d, all paths bit-identical %v):\n",
		s.Model, s.Collective, s.Nodes, s.PPN, s.Seed, s.BitIdentical)
	for _, p := range s.Points {
		fmt.Printf("  %-18s %8dB  virtual %10.2f us  slowdown %5.2fx  bit-identical %v\n",
			p.Label, p.Bytes, p.VirtualUs, p.SlowdownVsClean, p.BitIdentical)
	}
}

func printTunedSweep(s *bench.TunedSweepReport) {
	fmt.Printf("\ntuned-sweep (%s, %s %dx%d, seed %d, congestion net=%g, %d measurements, beats cost on %d points, bit-identical %v):\n",
		s.Model, s.Collective, s.Nodes, s.PPN, s.Seed, s.CongestionNet, s.Measurements, s.BeatsCost, s.BitIdentical)
	for _, p := range s.Points {
		mark := ""
		if p.MeasuredBeatsCost {
			mark = "  << measured wins"
		}
		fmt.Printf("  %8dB  table %12d ps  cost %12d ps (%s)  measured %12d ps (%s)%s\n",
			p.Bytes, p.TablePs, p.CostPs, p.CostPick, p.MeasuredPs, p.MeasuredPick, mark)
	}
}

// stopCPUProfile flushes the CPU profile (no-op until -cpuprofile
// installs the real one); every os.Exit path must call it.
var stopCPUProfile = func() {}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perf:", err)
	stopCPUProfile()
	os.Exit(1)
}
