// Command perf measures the wall-clock (host time, not virtual time)
// cost of figure-scale simulator runs and writes a BENCH_*.json report,
// so the repository carries a perf trajectory across PRs.
//
// Usage:
//
//	go run ./cmd/perf -out BENCH_PR1.json [-baseline old.json] [-case regexp]
//
// With -baseline, the old report's numbers are embedded alongside the
// new ones and per-case ns/op speedups are computed.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"repro/internal/bench"
)

func main() {
	out := flag.String("out", "", "write the JSON report to this path")
	baselinePath := flag.String("baseline", "", "compare against a previous report")
	caseRe := flag.String("case", "", "only run cases matching this regexp")
	flag.Parse()

	var re *regexp.Regexp
	if *caseRe != "" {
		var err error
		if re, err = regexp.Compile(*caseRe); err != nil {
			fatal(err)
		}
	}

	var baseline *bench.WallReport
	if *baselinePath != "" {
		var err error
		if baseline, err = bench.LoadWallReport(*baselinePath); err != nil {
			fatal(err)
		}
	}

	rep, err := run(re, baseline)
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		if err := rep.WriteWallReport(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func run(re *regexp.Regexp, baseline *bench.WallReport) (*bench.WallReport, error) {
	var filter func(string) bool
	if re != nil {
		filter = re.MatchString
	}
	rep, err := bench.RunWallCases(filter)
	if err != nil {
		return nil, err
	}
	if baseline != nil {
		rep.CompareTo(baseline)
	}
	print(rep)
	return rep, nil
}

func print(rep *bench.WallReport) {
	fmt.Printf("%-28s %14s %12s %12s %8s %10s\n",
		"case", "ns/op", "allocs/op", "B/op", "peakG", "virtual_us")
	for _, r := range rep.Results {
		fmt.Printf("%-28s %14.0f %12.0f %12.0f %8d %10.2f\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.PeakGoroutines, r.VirtualUs)
		if s, ok := rep.Speedup[r.Name]; ok {
			fmt.Printf("%-28s %13.2fx vs baseline\n", "", s)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perf:", err)
	os.Exit(1)
}
