// Command perf measures the wall-clock (host time, not virtual time)
// cost of figure-scale simulator runs and writes a BENCH_*.json report,
// so the repository carries a perf trajectory across PRs.
//
// Usage:
//
//	go run ./cmd/perf -out BENCH_PR1.json [-baseline old.json] [-case regexp]
//	go run ./cmd/perf -check -baseline BENCH_PR1.json [-case regexp]
//	go run ./cmd/perf -sweep coll,topo,scale [-tuning policy=cost,...] -out BENCH_PR4.json
//	go run ./cmd/perf -sweep scale -scalemax 8192 [-cpuprofile cpu.pprof]
//
// With -baseline, the old report's numbers are embedded alongside the
// new ones and per-case ns/op speedups are computed. With -check, the
// run becomes a CI perf-regression gate: it exits non-zero when any
// case is more than -maxslow times slower than the baseline (generous,
// for noisy CI hosts) or exceeds the strict allocs/op ceiling
// (allocations are deterministic, so they barely get slack).
//
// -sweep selects extra report dimensions (comma-separated, or "all"):
//
//	coll     the collective selection engine's algorithm choices and
//	         crossover points per message size
//	topo     the multi-level topology dimension (levels x ppn)
//	scale    the scale-out dimension: size-only allgather/allreduce up
//	         to -scalemax ranks, recording ns/op, peak goroutines,
//	         peak RSS
//	stencil  the process-topology dimension: 4-dim grid halo exchanges
//	         (CartCreate + NeighborAlltoall) per halo width up to
//	         -scalemax ranks
//
// -cpuprofile / -memprofile write pprof profiles covering the whole
// run (cases plus sweeps), for digging into control-plane hot spots.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/bench"
	"repro/internal/coll"
	"repro/internal/sim"
)

func main() {
	out := flag.String("out", "", "write the JSON report to this path")
	baselinePath := flag.String("baseline", "", "compare against a previous report")
	caseRe := flag.String("case", "", "only run cases matching this regexp")
	check := flag.Bool("check", false, "fail (exit 1) on regression vs -baseline")
	maxSlow := flag.Float64("maxslow", 3.0, "-check: max allowed ns/op slowdown factor")
	allocSlack := flag.Float64("allocslack", 1.10, "-check: allocs/op ceiling factor over baseline")
	sweep := flag.String("sweep", "", "extra sweep dimensions: coll,topo,scale,stencil or all")
	scaleMax := flag.Int("scalemax", 65536, "scale sweep: largest rank count to run")
	engineSpec := flag.String("engine", "both",
		"scale sweep execution backend: goroutine, event or both")
	tuningSpec := flag.String("tuning", "policy=cost",
		"coll tuning spec for the sweep (see REPRO_COLL_TUNING)")
	machine := flag.String("machine", "hazelhen-cray", "machine profile for the sweep")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path")
	flag.Parse()

	dims, err := parseSweep(*sweep)
	if err != nil {
		fatal(err)
	}

	var re *regexp.Regexp
	if *caseRe != "" {
		if re, err = regexp.Compile(*caseRe); err != nil {
			fatal(err)
		}
	}

	var baseline *bench.WallReport
	if *baselinePath != "" {
		if baseline, err = bench.LoadWallReport(*baselinePath); err != nil {
			fatal(err)
		}
	}
	if *check && baseline == nil {
		fatal(fmt.Errorf("-check needs -baseline"))
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		// fatal() and the -check exit both flush through stopCPUProfile:
		// a deferred stop would be skipped by os.Exit, truncating the
		// profile exactly when a regression is being investigated.
		stopCPUProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
			stopCPUProfile = func() {}
		}
		defer stopCPUProfile()
	}

	rep, err := run(re, baseline)
	if err != nil {
		fatal(err)
	}

	if len(dims) > 0 {
		tun, err := coll.ParseTuning(*tuningSpec)
		if err != nil {
			fatal(err)
		}
		mk, ok := sim.Profiles()[*machine]
		if !ok {
			fatal(fmt.Errorf("unknown machine %q", *machine))
		}
		if dims["coll"] {
			rep.CollSweep = bench.RunCollSweep(mk(), tun)
			printSweep(rep.CollSweep)
		}
		if dims["topo"] {
			if rep.TopoSweep, err = bench.RunTopoSweep(mk(), tun); err != nil {
				fatal(err)
			}
			printTopoSweep(rep.TopoSweep)
		}
		if dims["scale"] {
			engines, err := parseEngines(*engineSpec)
			if err != nil {
				fatal(err)
			}
			if rep.ScaleSweep, err = bench.RunScaleSweep(mk(), *scaleMax, engines); err != nil {
				fatal(err)
			}
			printScaleSweep(rep.ScaleSweep)
		}
		if dims["stencil"] {
			if rep.StencilSweep, err = bench.RunStencilSweep(mk(), *scaleMax); err != nil {
				fatal(err)
			}
			printStencilSweep(rep.StencilSweep)
		}
	}

	if *out != "" {
		if err := rep.WriteWallReport(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	if *check {
		if violations := rep.CheckAgainst(baseline, *maxSlow, *allocSlack); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "perf regression:", v)
			}
			stopCPUProfile()
			os.Exit(1)
		}
		fmt.Printf("perf check passed vs %s (max slowdown %.1fx, alloc slack %.2fx)\n",
			*baselinePath, *maxSlow, *allocSlack)
	}
}

// parseSweep resolves the -sweep dimension list. The historical bare
// boolean form ("-sweep" with no value) is gone; "all" selects every
// dimension.
func parseSweep(spec string) (map[string]bool, error) {
	dims := map[string]bool{}
	if spec == "" {
		return dims, nil
	}
	if spec == "all" {
		return map[string]bool{"coll": true, "topo": true, "scale": true, "stencil": true}, nil
	}
	for _, d := range strings.Split(spec, ",") {
		switch d = strings.TrimSpace(d); d {
		case "coll", "topo", "scale", "stencil":
			dims[d] = true
		default:
			return nil, fmt.Errorf("unknown sweep dimension %q (want coll, topo, scale, stencil or all)", d)
		}
	}
	return dims, nil
}

func run(re *regexp.Regexp, baseline *bench.WallReport) (*bench.WallReport, error) {
	var filter func(string) bool
	if re != nil {
		filter = re.MatchString
	}
	rep, err := bench.RunWallCases(filter)
	if err != nil {
		return nil, err
	}
	if baseline != nil {
		rep.CompareTo(baseline)
	}
	print(rep)
	return rep, nil
}

func print(rep *bench.WallReport) {
	fmt.Printf("%-28s %14s %12s %12s %8s %10s\n",
		"case", "ns/op", "allocs/op", "B/op", "peakG", "virtual_us")
	for _, r := range rep.Results {
		fmt.Printf("%-28s %14.0f %12.0f %12.0f %8d %10.2f\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.PeakGoroutines, r.VirtualUs)
		if s, ok := rep.Speedup[r.Name]; ok {
			fmt.Printf("%-28s %13.2fx vs baseline\n", "", s)
		}
	}
}

func printSweep(s *bench.CollSweepReport) {
	fmt.Printf("\ncoll-sweep (%s, policy %s): %d points, crossovers:\n",
		s.Model, s.Policy, len(s.Points))
	for _, x := range s.Crossovers {
		fmt.Printf("  %-10s n=%-3d %s: %s -> %s at %d B\n",
			x.Collective, x.CommSize, x.Hop, x.From, x.To, x.AtBytes)
	}
}

func printTopoSweep(s *bench.TopoSweepReport) {
	fmt.Printf("\ntopo-sweep (%s, policy %s): %d points (levels x ppn):\n",
		s.Model, s.Policy, len(s.Points))
	for _, p := range s.Points {
		fmt.Printf("  %-18s %dx%-3d %8dB  hier %10.2f us  hybrid(%s) %10.2f us\n",
			p.Stack, p.Nodes, p.PPN, p.Bytes, p.HierUs, p.SharedLevel, p.HybridUs)
	}
}

// parseEngines resolves the -engine flag into the backend list handed
// to the scale sweep ("both" runs goroutine then event, letting the
// sweep cross-check their virtual timelines).
func parseEngines(spec string) ([]sim.Engine, error) {
	if spec == "" || spec == "both" {
		return []sim.Engine{sim.EngineGoroutine, sim.EngineEvent}, nil
	}
	e, err := sim.ParseEngine(spec)
	if err != nil {
		return nil, fmt.Errorf("-engine: %w (or \"both\")", err)
	}
	return []sim.Engine{e}, nil
}

func printScaleSweep(s *bench.ScaleSweepReport) {
	fmt.Printf("\nscale-sweep (%s, up to %d ranks):\n", s.Model, s.MaxRanks)
	for _, p := range s.Points {
		fold := ""
		if p.FoldUnit > 0 {
			fold = fmt.Sprintf(" fold %d", p.FoldUnit)
		}
		fmt.Printf("  %-10s %5dx%-3d %7d ranks %-9s %10.1f ms/op  peakG %7d  peakRSS %5.0f MiB  virtual %10.2f us%s\n",
			p.Coll, p.Nodes, p.PPN, p.Ranks, p.Engine, p.NsPerOp/1e6, p.PeakGoroutines,
			float64(p.PeakRSSBytes)/(1<<20), p.VirtualUs, fold)
	}
}

func printStencilSweep(s *bench.StencilSweepReport) {
	fmt.Printf("\nstencil-sweep (%s, up to %d ranks):\n", s.Model, s.MaxRanks)
	for _, p := range s.Points {
		fmt.Printf("  %-12s %7d ranks  halo %4dB %10.1f ms/op  setup %7.0f ms  peakG %7d  virtual %10.2f us\n",
			p.Dims, p.Ranks, p.HaloBytes, p.NsPerOp/1e6, p.SetupNs/1e6, p.PeakGoroutines, p.VirtualUs)
	}
}

// stopCPUProfile flushes the CPU profile (no-op until -cpuprofile
// installs the real one); every os.Exit path must call it.
var stopCPUProfile = func() {}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perf:", err)
	stopCPUProfile()
	os.Exit(1)
}
