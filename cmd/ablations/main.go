// Command ablations quantifies the design choices DESIGN.md calls out,
// beyond what the paper itself measures:
//
//   - synchronization flavor (barrier vs p2p flags vs shared flags,
//     paper Sect. 6);
//   - leader count in the pure-MPI hierarchy (single- vs multi-leader,
//     the related-work alternative [14]) against the hybrid scheme;
//   - pure allgather algorithm family at fixed shape;
//   - chunked ("pipelined", [30]) vs plain bridge exchange — a negative
//     result under a LogGP model (see EXPERIMENTS.md);
//   - barrier algorithms (dissemination vs central counter).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/coll"
	"repro/internal/hybrid"
	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/sim"
	// Blank import: installs the REPRO_COLL_TUNING environment
	// compatibility shim (the tuning grammar lives in internal/spec).
	_ "repro/internal/spec"
)

func main() {
	machine := flag.String("machine", "hazelhen-cray", "machine profile")
	flag.Parse()
	mk, ok := sim.Profiles()[*machine]
	if !ok {
		fmt.Fprintf(os.Stderr, "ablations: unknown machine %q\n", *machine)
		os.Exit(1)
	}
	for _, f := range []func(*sim.CostModel) error{
		syncFlavors, leaderCounts, allgatherAlgos, pipelined, barriers, npbKernels,
	} {
		if err := f(mk()); err != nil {
			fmt.Fprintln(os.Stderr, "ablations:", err)
			os.Exit(1)
		}
	}
}

func run(model *sim.CostModel, shape []int, body func(p *mpi.Proc) error) (sim.Time, error) {
	topo, err := sim.NewTopology(shape)
	if err != nil {
		return 0, err
	}
	w, err := mpi.NewWorld(model, topo)
	if err != nil {
		return 0, err
	}
	defer w.Close()
	if err := w.Run(body); err != nil {
		return 0, err
	}
	return w.MaxClock(), nil
}

func uniformShape(nodes, ppn int) []int {
	s := make([]int, nodes)
	for i := range s {
		s[i] = ppn
	}
	return s
}

func syncFlavors(model *sim.CostModel) error {
	t := &bench.Table{
		Name:   "Ablation: hybrid allgather synchronization flavor (8 nodes x 24 ranks, us per op)",
		Note:   "Sect. 6: the paper uses barriers; flag-based schemes are the 'light-weight means'.",
		Header: []string{"elems", "barrier", "p2p", "sharedflags"},
	}
	for _, elems := range []int{1, 512, 16384} {
		row := []string{fmt.Sprint(elems)}
		for _, mode := range []hybrid.SyncMode{hybrid.SyncBarrier, hybrid.SyncP2P, hybrid.SyncSharedFlags} {
			lat, err := bench.HyAllgatherLatency(model, uniformShape(8, 24), 8*elems, bench.MicroOpts{Sync: mode})
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.2f", lat.Us()))
		}
		t.AddRow(row...)
	}
	return t.Fprint(os.Stdout)
}

func leaderCounts(model *sim.CostModel) error {
	t := &bench.Table{
		Name:   "Ablation: leaders per node, pure-MPI hierarchy vs hybrid (8 nodes x 24 ranks, us per op)",
		Note:   "Multi-leader [14] parallelizes the intra-node phases; the hybrid scheme removes them.",
		Header: []string{"elems", "1-leader", "2-leader", "4-leader", "8-leader", "hybrid"},
	}
	shape := uniformShape(8, 24)
	for _, elems := range []int{64, 2048, 16384} {
		per := 8 * elems
		row := []string{fmt.Sprint(elems)}
		for _, leaders := range []int{1, 2, 4, 8} {
			l := leaders
			lat, err := run(model, shape, func(p *mpi.Proc) error {
				m, err := coll.NewMultiLeaderHier(p.CommWorld(), l)
				if err != nil {
					return err
				}
				recv := mpi.Sized(per * p.Size())
				for i := 0; i < 3; i++ {
					if err := m.Allgather(mpi.Sized(per), recv, per); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.2f", (lat/3).Us()))
		}
		hy, err := bench.HyAllgatherLatency(model, shape, per, bench.MicroOpts{Iters: 3})
		if err != nil {
			return err
		}
		row = append(row, fmt.Sprintf("%.2f", hy.Us()))
		t.AddRow(row...)
	}
	return t.Fprint(os.Stdout)
}

func allgatherAlgos(model *sim.CostModel) error {
	t := &bench.Table{
		Name:   "Ablation: flat allgather algorithms (16 nodes x 1 rank, us per op)",
		Note:   "The classic family [28]; the tuned selector picks per size.",
		Header: []string{"elems", "ring", "recdbl", "bruck", "neighbor", "auto"},
	}
	shape := uniformShape(16, 1)
	for _, elems := range []int{1, 64, 4096, 65536} {
		per := 8 * elems
		row := []string{fmt.Sprint(elems)}
		algos := []func(c *mpi.Comm, s, r mpi.Buf, per int) error{
			coll.AllgatherRing, coll.AllgatherRecDbl, coll.AllgatherBruck,
			coll.AllgatherNeighbor, coll.Allgather,
		}
		for _, fn := range algos {
			f := fn
			lat, err := run(model, shape, func(p *mpi.Proc) error {
				return f(p.CommWorld(), mpi.Sized(per), mpi.Sized(per*p.Size()), per)
			})
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.2f", lat.Us()))
		}
		t.AddRow(row...)
	}
	return t.Fprint(os.Stdout)
}

func pipelined(model *sim.CostModel) error {
	t := &bench.Table{
		Name:   "Ablation: chunked (pipelined [30]) vs plain bridge exchange (8 nodes x 4 ranks, large blocks)",
		Note:   "Negative result: a ring is already pipelined at block granularity; chunking only adds latency.",
		Header: []string{"block_KiB", "plain_us", "chunked128K_us"},
	}
	shape := uniformShape(8, 4)
	for _, kib := range []int{128, 512, 2048} {
		per := kib << 10
		row := []string{fmt.Sprint(kib)}
		for _, chunk := range []int{0, 128 << 10} {
			ch := chunk
			lat, err := run(model, shape, func(p *mpi.Proc) error {
				ctx, err := hybrid.New(p.CommWorld())
				if err != nil {
					return err
				}
				var opts []hybrid.AllgatherOption
				if ch > 0 {
					opts = append(opts, hybrid.WithPipelineChunk(ch))
				}
				a, err := ctx.NewAllgatherer(per, opts...)
				if err != nil {
					return err
				}
				return a.Allgather()
			})
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.2f", lat.Us()))
		}
		t.AddRow(row...)
	}
	return t.Fprint(os.Stdout)
}

func npbKernels(model *sim.CostModel) error {
	t := &bench.Table{
		Name:   "Ablation: NPB-style kernels, pure vs hybrid collectives (4 nodes x 24 ranks, ms per run)",
		Note:   "Allreduce-shaped kernels (CG, EP) gain; alltoall-shaped ones (FT, IS) LOSE badly —\nfunneling a complete exchange through one leader per node serializes what the pairwise\nexchange spreads over every rank. See EXPERIMENTS.md.",
		Header: []string{"kernel", "pure_ms", "hybrid_ms", "ratio"},
	}
	shape := uniformShape(4, 24)
	for _, kernel := range []npb.Kernel{npb.CG, npb.FT, npb.IS, npb.EP} {
		var times [2]sim.Time
		for i, hy := range []bool{false, true} {
			topo, err := sim.NewTopology(shape)
			if err != nil {
				return err
			}
			w, err := mpi.NewWorld(model, topo)
			if err != nil {
				return err
			}
			res, err := npb.Run(w, npb.Config{Kernel: kernel, N: 2048, Iters: 8, Hybrid: hy})
			w.Close()
			if err != nil {
				return err
			}
			times[i] = res.Makespan
		}
		t.AddRow(kernel.String(),
			fmt.Sprintf("%.2f", times[0].Ms()), fmt.Sprintf("%.2f", times[1].Ms()),
			fmt.Sprintf("%.2f", float64(times[0])/float64(times[1])))
	}
	return t.Fprint(os.Stdout)
}

func barriers(model *sim.CostModel) error {
	t := &bench.Table{
		Name:   "Ablation: barrier algorithms (us per barrier)",
		Note:   "Dissemination (runtime default) vs central counter; single-node barriers take the shm fast path.",
		Header: []string{"shape", "dissemination", "central"},
	}
	for _, shape := range [][]int{{24}, uniformShape(8, 24)} {
		row := []string{fmt.Sprint(shape)}
		for _, central := range []bool{false, true} {
			cen := central
			lat, err := run(model, shape, func(p *mpi.Proc) error {
				for i := 0; i < 4; i++ {
					var err error
					if cen {
						err = coll.BarrierCentral(p.CommWorld())
					} else {
						err = coll.Barrier(p.CommWorld())
					}
					if err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.2f", (lat/4).Us()))
		}
		t.AddRow(row...)
	}
	return t.Fprint(os.Stdout)
}
