// Command ablations quantifies the design choices DESIGN.md calls out,
// beyond what the paper itself measures:
//
//   - synchronization flavor (barrier vs p2p flags vs shared flags,
//     paper Sect. 6);
//   - leader count in the pure-MPI hierarchy (single- vs multi-leader,
//     the related-work alternative [14]) against the hybrid scheme;
//   - pure allgather algorithm family at fixed shape;
//   - chunked ("pipelined", [30]) vs plain bridge exchange — a negative
//     result under a LogGP model (see EXPERIMENTS.md);
//   - barrier algorithms (dissemination vs central counter);
//   - deterministic noise drift: how far seeded jitter, stragglers and
//     congestion move an allreduce makespan off the clean timeline,
//     and how much it varies across seeds.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/coll"
	"repro/internal/hybrid"
	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/sim"
	// Blank import: installs the REPRO_COLL_TUNING environment
	// compatibility shim (the tuning grammar lives in internal/spec).
	_ "repro/internal/spec"
)

func main() {
	machine := flag.String("machine", "hazelhen-cray", "machine profile")
	flag.Parse()
	mk, ok := sim.Profiles()[*machine]
	if !ok {
		fmt.Fprintf(os.Stderr, "ablations: unknown machine %q\n", *machine)
		os.Exit(1)
	}
	for _, f := range []func(*sim.CostModel) error{
		syncFlavors, leaderCounts, allgatherAlgos, pipelined, barriers, npbKernels, noiseDrift,
		noiseSelection,
	} {
		if err := f(mk()); err != nil {
			fmt.Fprintln(os.Stderr, "ablations:", err)
			os.Exit(1)
		}
	}
}

func run(model *sim.CostModel, shape []int, body func(p *mpi.Proc) error) (sim.Time, error) {
	topo, err := sim.NewTopology(shape)
	if err != nil {
		return 0, err
	}
	w, err := mpi.NewWorld(model, topo)
	if err != nil {
		return 0, err
	}
	defer w.Close()
	if err := w.Run(body); err != nil {
		return 0, err
	}
	return w.MaxClock(), nil
}

func uniformShape(nodes, ppn int) []int {
	s := make([]int, nodes)
	for i := range s {
		s[i] = ppn
	}
	return s
}

func syncFlavors(model *sim.CostModel) error {
	t := &bench.Table{
		Name:   "Ablation: hybrid allgather synchronization flavor (8 nodes x 24 ranks, us per op)",
		Note:   "Sect. 6: the paper uses barriers; flag-based schemes are the 'light-weight means'.",
		Header: []string{"elems", "barrier", "p2p", "sharedflags"},
	}
	for _, elems := range []int{1, 512, 16384} {
		row := []string{fmt.Sprint(elems)}
		for _, mode := range []hybrid.SyncMode{hybrid.SyncBarrier, hybrid.SyncP2P, hybrid.SyncSharedFlags} {
			lat, err := bench.HyAllgatherLatency(model, uniformShape(8, 24), 8*elems, bench.MicroOpts{Sync: mode})
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.2f", lat.Us()))
		}
		t.AddRow(row...)
	}
	return t.Fprint(os.Stdout)
}

func leaderCounts(model *sim.CostModel) error {
	t := &bench.Table{
		Name:   "Ablation: leaders per node, pure-MPI hierarchy vs hybrid (8 nodes x 24 ranks, us per op)",
		Note:   "Multi-leader [14] parallelizes the intra-node phases; the hybrid scheme removes them.",
		Header: []string{"elems", "1-leader", "2-leader", "4-leader", "8-leader", "hybrid"},
	}
	shape := uniformShape(8, 24)
	for _, elems := range []int{64, 2048, 16384} {
		per := 8 * elems
		row := []string{fmt.Sprint(elems)}
		for _, leaders := range []int{1, 2, 4, 8} {
			l := leaders
			lat, err := run(model, shape, func(p *mpi.Proc) error {
				m, err := coll.NewMultiLeaderHier(p.CommWorld(), l)
				if err != nil {
					return err
				}
				recv := mpi.Sized(per * p.Size())
				for i := 0; i < 3; i++ {
					if err := m.Allgather(mpi.Sized(per), recv, per); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.2f", (lat/3).Us()))
		}
		hy, err := bench.HyAllgatherLatency(model, shape, per, bench.MicroOpts{Iters: 3})
		if err != nil {
			return err
		}
		row = append(row, fmt.Sprintf("%.2f", hy.Us()))
		t.AddRow(row...)
	}
	return t.Fprint(os.Stdout)
}

func allgatherAlgos(model *sim.CostModel) error {
	t := &bench.Table{
		Name:   "Ablation: flat allgather algorithms (16 nodes x 1 rank, us per op)",
		Note:   "The classic family [28]; the tuned selector picks per size.",
		Header: []string{"elems", "ring", "recdbl", "bruck", "neighbor", "auto"},
	}
	shape := uniformShape(16, 1)
	for _, elems := range []int{1, 64, 4096, 65536} {
		per := 8 * elems
		row := []string{fmt.Sprint(elems)}
		algos := []func(c *mpi.Comm, s, r mpi.Buf, per int) error{
			coll.AllgatherRing, coll.AllgatherRecDbl, coll.AllgatherBruck,
			coll.AllgatherNeighbor, coll.Allgather,
		}
		for _, fn := range algos {
			f := fn
			lat, err := run(model, shape, func(p *mpi.Proc) error {
				return f(p.CommWorld(), mpi.Sized(per), mpi.Sized(per*p.Size()), per)
			})
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.2f", lat.Us()))
		}
		t.AddRow(row...)
	}
	return t.Fprint(os.Stdout)
}

func pipelined(model *sim.CostModel) error {
	t := &bench.Table{
		Name:   "Ablation: chunked (pipelined [30]) vs plain bridge exchange (8 nodes x 4 ranks, large blocks)",
		Note:   "Negative result: a ring is already pipelined at block granularity; chunking only adds latency.",
		Header: []string{"block_KiB", "plain_us", "chunked128K_us"},
	}
	shape := uniformShape(8, 4)
	for _, kib := range []int{128, 512, 2048} {
		per := kib << 10
		row := []string{fmt.Sprint(kib)}
		for _, chunk := range []int{0, 128 << 10} {
			ch := chunk
			lat, err := run(model, shape, func(p *mpi.Proc) error {
				ctx, err := hybrid.New(p.CommWorld())
				if err != nil {
					return err
				}
				var opts []hybrid.AllgatherOption
				if ch > 0 {
					opts = append(opts, hybrid.WithPipelineChunk(ch))
				}
				a, err := ctx.NewAllgatherer(per, opts...)
				if err != nil {
					return err
				}
				return a.Allgather()
			})
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.2f", lat.Us()))
		}
		t.AddRow(row...)
	}
	return t.Fprint(os.Stdout)
}

func npbKernels(model *sim.CostModel) error {
	t := &bench.Table{
		Name:   "Ablation: NPB-style kernels, pure vs hybrid collectives (4 nodes x 24 ranks, ms per run)",
		Note:   "Allreduce-shaped kernels (CG, EP) gain; alltoall-shaped ones (FT, IS) LOSE badly —\nfunneling a complete exchange through one leader per node serializes what the pairwise\nexchange spreads over every rank. See EXPERIMENTS.md.",
		Header: []string{"kernel", "pure_ms", "hybrid_ms", "ratio"},
	}
	shape := uniformShape(4, 24)
	for _, kernel := range []npb.Kernel{npb.CG, npb.FT, npb.IS, npb.EP} {
		var times [2]sim.Time
		for i, hy := range []bool{false, true} {
			topo, err := sim.NewTopology(shape)
			if err != nil {
				return err
			}
			w, err := mpi.NewWorld(model, topo)
			if err != nil {
				return err
			}
			res, err := npb.Run(w, npb.Config{Kernel: kernel, N: 2048, Iters: 8, Hybrid: hy})
			w.Close()
			if err != nil {
				return err
			}
			times[i] = res.Makespan
		}
		t.AddRow(kernel.String(),
			fmt.Sprintf("%.2f", times[0].Ms()), fmt.Sprintf("%.2f", times[1].Ms()),
			fmt.Sprintf("%.2f", float64(times[0])/float64(times[1])))
	}
	return t.Fprint(os.Stdout)
}

func noiseDrift(model *sim.CostModel) error {
	t := &bench.Table{
		Name:   "Ablation: deterministic noise drift (8 nodes x 8 ranks, 4096-elem allreduce, us per op)",
		Note:   "Seeded noise moves the timeline off the clean run; per-seed spread (5 seeds) is the\nsensitivity any clean-machine tuning decision is exposed to under perturbation.",
		Header: []string{"noise", "mean_us", "min_us", "max_us", "drift_vs_clean", "seed_spread"},
	}
	const elems, iters = 4096, 2
	levels := []struct {
		label string
		mk    func(seed int64) *sim.Noise
	}{
		{"clean", func(int64) *sim.Noise { return nil }},
		{"jitter=0.1", func(seed int64) *sim.Noise {
			return &sim.Noise{Seed: seed, Jitter: 0.1}
		}},
		{"jitter=0.3", func(seed int64) *sim.Noise {
			return &sim.Noise{Seed: seed, Jitter: 0.3}
		}},
		{"straggler x4", func(seed int64) *sim.Noise {
			return &sim.Noise{Seed: seed, Stragglers: []int{0}, StragglerFactor: 4}
		}},
		{"mixed", func(seed int64) *sim.Noise {
			return &sim.Noise{Seed: seed, Jitter: 0.2, Stragglers: []int{0}, StragglerFactor: 2,
				Congestion: map[sim.HopClass]float64{sim.HopNet: 2}}
		}},
	}
	measure := func(n *sim.Noise) (sim.Time, error) {
		topo, err := sim.Uniform(8, 8)
		if err != nil {
			return 0, err
		}
		w, err := mpi.NewWorld(model, topo, mpi.WithNoise(n))
		if err != nil {
			return 0, err
		}
		defer w.Close()
		err = w.Run(func(p *mpi.Proc) error {
			c := p.CommWorld()
			send, recv := mpi.Sized(elems*8), mpi.Sized(elems*8)
			for i := 0; i < iters; i++ {
				if err := coll.Allreduce(c, send, recv, elems, mpi.Float64, mpi.OpSum); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
		return w.MaxClock() / iters, nil
	}
	var clean float64
	for _, lvl := range levels {
		seeds := []int64{1, 2, 3, 4, 5}
		if lvl.label == "clean" {
			seeds = seeds[:1] // seeds only key noise draws
		}
		var lats []float64
		for _, seed := range seeds {
			lat, err := measure(lvl.mk(seed))
			if err != nil {
				return fmt.Errorf("noise drift %q seed %d: %w", lvl.label, seed, err)
			}
			lats = append(lats, lat.Us())
		}
		minL, maxL, sum := lats[0], lats[0], 0.0
		for _, l := range lats {
			if l < minL {
				minL = l
			}
			if l > maxL {
				maxL = l
			}
			sum += l
		}
		mean := sum / float64(len(lats))
		if lvl.label == "clean" {
			clean = mean
		}
		t.AddRow(lvl.label,
			fmt.Sprintf("%.2f", mean), fmt.Sprintf("%.2f", minL), fmt.Sprintf("%.2f", maxL),
			fmt.Sprintf("%+.1f%%", (mean/clean-1)*100),
			fmt.Sprintf("%.1f%%", (maxL-minL)/mean*100))
	}
	return t.Fprint(os.Stdout)
}

// noiseSelection answers the ROADMAP drift question: the selection
// engine prices a CLEAN machine, so how far do its table/cost picks sit
// from the per-seed optimal once the world is noisy? Per noise level
// and seed, every registered allreduce algorithm is forced in turn; the
// seed's optimal is the fastest forced run, and each policy's drift is
// its own virtual time over that optimum. Because the noise draws are
// seed-deterministic, a policy run's time equals its chosen algorithm's
// forced time exactly, which is how the pick columns are recovered.
func noiseSelection(model *sim.CostModel) error {
	t := &bench.Table{
		Name: "Ablation: selection drift under noise (8 nodes x 8 ranks allreduce, mean of 5 seeds)",
		Note: "Noise-blind policies keep their clean-machine choice; drift is the price of that choice\n" +
			"against the per-seed fastest forced algorithm. The measured policy replays the per-seed\n" +
			"race winner from its tuning store, so its drift is zero by construction — the row verifies\n" +
			"the store-served pick really reproduces the optimum. Picks shown for seed 1.",
		Header: []string{"elems", "noise", "table_pick", "cost_pick", "measured_pick", "optimal", "table_drift", "cost_drift", "measured_drift"},
	}
	const iters = 2
	levels := []struct {
		label string
		mk    func(seed int64) *sim.Noise
	}{
		{"clean", func(int64) *sim.Noise { return nil }},
		{"jitter=0.5", func(seed int64) *sim.Noise {
			return &sim.Noise{Seed: seed, Jitter: 0.5}
		}},
		{"straggler x8", func(seed int64) *sim.Noise {
			return &sim.Noise{Seed: seed, Stragglers: []int{0}, StragglerFactor: 8}
		}},
		{"congestion net=16", func(seed int64) *sim.Noise {
			return &sim.Noise{Seed: seed, Congestion: map[sim.HopClass]float64{sim.HopNet: 16}}
		}},
		{"mixed", func(seed int64) *sim.Noise {
			return &sim.Noise{Seed: seed, Jitter: 0.2, Stragglers: []int{0}, StragglerFactor: 4,
				Congestion: map[sim.HopClass]float64{sim.HopNet: 4}}
		}},
	}
	measure := func(elems int, n *sim.Noise, tun coll.Tuning) (sim.Time, error) {
		topo, err := sim.Uniform(8, 8)
		if err != nil {
			return 0, err
		}
		w, err := mpi.NewWorld(model, topo, mpi.WithNoise(n), mpi.WithCollConfig(tun))
		if err != nil {
			return 0, err
		}
		defer w.Close()
		err = w.Run(func(p *mpi.Proc) error {
			c := p.CommWorld()
			send, recv := mpi.Sized(elems*8), mpi.Sized(elems*8)
			for i := 0; i < iters; i++ {
				if err := coll.Allreduce(c, send, recv, elems, mpi.Float64, mpi.OpSum); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
		return w.MaxClock(), nil
	}
	algos := coll.Algorithms(coll.CollAllreduce)
	pickOf := func(forced map[string]sim.Time, lat sim.Time) string {
		for _, name := range algos {
			if forced[name] == lat {
				return name
			}
		}
		return "?"
	}
	for _, elems := range []int{128, 2048, 16384} {
		for _, lvl := range levels {
			seeds := []int64{1, 2, 3, 4, 5}
			if lvl.label == "clean" {
				seeds = seeds[:1] // seeds only key noise draws
			}
			var tableDrift, costDrift, measuredDrift float64
			var tablePick, costPick, measuredPick, optPick string
			for _, seed := range seeds {
				n := lvl.mk(seed)
				forced := make(map[string]sim.Time, len(algos))
				var best sim.Time
				bestName := ""
				for _, name := range algos {
					lat, err := measure(elems, n, coll.Tuning{
						Force: map[coll.Collective]string{coll.CollAllreduce: name}})
					if err != nil {
						return fmt.Errorf("noise selection %q forced %s: %w", lvl.label, name, err)
					}
					forced[name] = lat
					if bestName == "" || lat < best {
						best, bestName = lat, name
					}
				}
				tl, err := measure(elems, n, coll.Tuning{Policy: coll.PolicyTable})
				if err != nil {
					return err
				}
				cl, err := measure(elems, n, coll.Tuning{Policy: coll.PolicyCost})
				if err != nil {
					return err
				}
				// The measured policy with a warm store: serve the
				// per-seed race winner (the forced runs above ARE the
				// tuner's candidate race — same seed, strict < in
				// registration order) through the real Lookup path.
				ml, err := measure(elems, n, coll.Tuning{
					Policy: coll.PolicyMeasured,
					Lookup: func(cl coll.Collective, e coll.Env) (string, bool) {
						if cl == coll.CollAllreduce && e.Size == 64 {
							return bestName, true
						}
						return "", false
					},
				})
				if err != nil {
					return err
				}
				tableDrift += float64(tl)/float64(best) - 1
				costDrift += float64(cl)/float64(best) - 1
				measuredDrift += float64(ml)/float64(best) - 1
				if seed == seeds[0] {
					optPick, tablePick, costPick = bestName, pickOf(forced, tl), pickOf(forced, cl)
					measuredPick = pickOf(forced, ml)
				}
			}
			t.AddRow(fmt.Sprint(elems), lvl.label, tablePick, costPick, measuredPick, optPick,
				fmt.Sprintf("%+.1f%%", tableDrift/float64(len(seeds))*100),
				fmt.Sprintf("%+.1f%%", costDrift/float64(len(seeds))*100),
				fmt.Sprintf("%+.1f%%", measuredDrift/float64(len(seeds))*100))
		}
	}
	return t.Fprint(os.Stdout)
}

func barriers(model *sim.CostModel) error {
	t := &bench.Table{
		Name:   "Ablation: barrier algorithms (us per barrier)",
		Note:   "Dissemination (runtime default) vs central counter; single-node barriers take the shm fast path.",
		Header: []string{"shape", "dissemination", "central"},
	}
	for _, shape := range [][]int{{24}, uniformShape(8, 24)} {
		row := []string{fmt.Sprint(shape)}
		for _, central := range []bool{false, true} {
			cen := central
			lat, err := run(model, shape, func(p *mpi.Proc) error {
				for i := 0; i < 4; i++ {
					var err error
					if cen {
						err = coll.BarrierCentral(p.CommWorld())
					} else {
						err = coll.Barrier(p.CommWorld())
					}
					if err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.2f", (lat/4).Us()))
		}
		t.AddRow(row...)
	}
	return t.Fprint(os.Stdout)
}
