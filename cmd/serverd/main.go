// Command serverd hosts the simulator as a long-running what-if
// service: the internal/server HTTP/JSON API over the declarative
// internal/spec Query, with request coalescing, an LRU result cache,
// a warm world pool (resident simulated worlds reused across queries
// that share a shape), bounded worker pools and Prometheus-style
// metrics.
//
// Usage:
//
//	go run ./cmd/serverd -addr :8080
//	curl -s localhost:8080/v1/run -d '{"machine":"laptop",
//	  "topology":{"nodes":4,"ppn":4},"collective":"allgather",
//	  "sizes":[1024]}'
//
// Every flag also reads an environment-variable default (REPRO_ADDR,
// REPRO_WORKERS, ... — see API.md), so the container image configures
// the daemon without wrapping the command line. See API.md for every
// endpoint, the full Query schema and more examples. Shutdown is
// graceful: on SIGINT/SIGTERM the listener closes, in-flight requests
// get -drain to finish (then their worlds are aborted), the warm world
// pool is retired, and the simulator's parked rank workers are drained
// so the process exits with no simulator goroutines.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/mpi"
	"repro/internal/server"
)

// envString, envInt, envInt64 and envDuration resolve a flag's default
// from the environment (the container-config path): the variable wins
// over the built-in default, the flag wins over both. A malformed
// variable is a startup error, not a silent fallback.
func envString(key, def string) string {
	if v, ok := os.LookupEnv(key); ok {
		return v
	}
	return def
}

func envInt(key string, def int) int {
	v, ok := os.LookupEnv(key)
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		fatal(fmt.Errorf("%s=%q: %w", key, v, err))
	}
	return n
}

func envInt64(key string, def int64) int64 {
	v, ok := os.LookupEnv(key)
	if !ok {
		return def
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		fatal(fmt.Errorf("%s=%q: %w", key, v, err))
	}
	return n
}

func envFloat(key string, def float64) float64 {
	v, ok := os.LookupEnv(key)
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		fatal(fmt.Errorf("%s=%q: %w", key, v, err))
	}
	return f
}

func envDuration(key string, def time.Duration) time.Duration {
	v, ok := os.LookupEnv(key)
	if !ok {
		return def
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		fatal(fmt.Errorf("%s=%q: %w", key, v, err))
	}
	return d
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "serverd:", err)
	os.Exit(2)
}

func main() {
	addr := flag.String("addr", envString("REPRO_ADDR", ":8080"), "listen address")
	workers := flag.Int("workers", envInt("REPRO_WORKERS", 0), "max concurrent point queries (0 = GOMAXPROCS)")
	sweepWorkers := flag.Int("sweep-workers", envInt("REPRO_SWEEP_WORKERS", 0), "max concurrent sweep queries (0 = workers/4)")
	cacheEntries := flag.Int("cache", envInt("REPRO_CACHE", 0), "result cache capacity (0 = default 4096)")
	maxRanks := flag.Int("max-ranks", envInt("REPRO_MAX_RANKS", 0), "admission cap on a query's world size (0 = default 2^20)")
	maxGoroutineRanks := flag.Int("max-goroutine-ranks", envInt("REPRO_MAX_GOROUTINE_RANKS", 0), "tighter world-size cap for goroutine-engine queries (0 = default 2^16)")
	maxWork := flag.Int64("max-work", envInt64("REPRO_MAX_WORK", 0), "admission cap on ranks x sizes x iters per query (0 = default 2^28)")
	poolRanks := flag.Int("pool-ranks", envInt("REPRO_POOL_RANKS", 0), "warm world pool rank budget (0 = default 2^20, negative disables pooling)")
	poolIdle := flag.Duration("pool-idle", envDuration("REPRO_POOL_IDLE", 0), "close pooled worlds idle this long (0 = default 60s)")
	groupParallel := flag.Int("group-parallel", envInt("REPRO_GROUP_PARALLEL", 0), "max concurrent ladder groups per query (0 = default 4)")
	tuneStore := flag.String("tune-store", envString("REPRO_TUNE_STORE", ""), "path of the persisted measured-policy tuning store (empty = in-memory only)")
	tenantQPS := flag.Float64("tenant-qps", envFloat("REPRO_TENANT_QPS", 0), "per-tenant rate limit on query endpoints, requests/s by X-Tenant header (0 = unlimited)")
	tenantBurst := flag.Int("tenant-burst", envInt("REPRO_TENANT_BURST", 0), "per-tenant burst capacity (0 = 2x tenant-qps)")
	timeout := flag.Duration("timeout", envDuration("REPRO_TIMEOUT", 60*time.Second), "per-request execution budget")
	drain := flag.Duration("drain", envDuration("REPRO_DRAIN", 10*time.Second), "graceful-shutdown budget for in-flight requests")
	pprofAddr := flag.String("pprof", envString("REPRO_PPROF", ""), "serve net/http/pprof on this extra loopback address (e.g. 127.0.0.1:6060; empty = off)")
	logLevel := flag.String("log-level", envString("REPRO_LOG_LEVEL", "info"), "log level: debug, info, warn or error")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fatal(err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	svc := server.New(server.Config{
		Workers:           *workers,
		SweepWorkers:      *sweepWorkers,
		CacheEntries:      *cacheEntries,
		MaxRanks:          *maxRanks,
		MaxGoroutineRanks: *maxGoroutineRanks,
		MaxWork:           *maxWork,
		WorldPoolRanks:    *poolRanks,
		WorldPoolIdle:     *poolIdle,
		GroupParallelism:  *groupParallel,
		TuneStorePath:     *tuneStore,
		TenantQPS:         *tenantQPS,
		TenantBurst:       *tenantBurst,
		Timeout:           *timeout,
		Logger:            logger,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Profiling is opt-in and deliberately on its own listener, so the
	// service port never exposes pprof: bind -pprof to loopback and
	// the debug surface stays host-local even when -addr is public.
	var pprofSrv *http.Server
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv = &http.Server{Addr: *pprofAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof listener failed", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("serverd listening", "addr", *addr, "timeout", *timeout)

	select {
	case err := <-errCh:
		logger.Error("listener failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("shutting down", "drain", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("shutdown", "err", err)
	}
	if pprofSrv != nil {
		pprofSrv.Close()
	}
	// Abort anything the drain window did not flush and retire the
	// warm world pool, then release the simulator's parked rank
	// workers.
	svc.Close()
	released := mpi.DrainIdleWorkers()
	logger.Info("stopped", "rank_workers_released", released)
}
