// Command serverd hosts the simulator as a long-running what-if
// service: the internal/server HTTP/JSON API over the declarative
// internal/spec Query, with request coalescing, an LRU result cache,
// bounded worker pools and Prometheus-style metrics.
//
// Usage:
//
//	go run ./cmd/serverd -addr :8080
//	curl -s localhost:8080/v1/run -d '{"machine":"laptop",
//	  "topology":{"nodes":4,"ppn":4},"collective":"allgather",
//	  "sizes":[1024]}'
//
// See API.md for every endpoint, the full Query schema and more
// examples. Shutdown is graceful: on SIGINT/SIGTERM the listener
// closes, in-flight requests get -drain to finish (then their worlds
// are aborted), and the simulator's parked rank workers are drained so
// the process exits with no simulator goroutines.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/mpi"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "max concurrent point queries (0 = GOMAXPROCS)")
	sweepWorkers := flag.Int("sweep-workers", 0, "max concurrent sweep queries (0 = workers/4)")
	cacheEntries := flag.Int("cache", 0, "result cache capacity (0 = default 4096)")
	maxRanks := flag.Int("max-ranks", 0, "admission cap on a query's world size (0 = default 2^20)")
	maxGoroutineRanks := flag.Int("max-goroutine-ranks", 0, "tighter world-size cap for goroutine-engine queries (0 = default 2^16)")
	maxWork := flag.Int64("max-work", 0, "admission cap on ranks x sizes x iters per query (0 = default 2^28)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request execution budget")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight requests")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintln(os.Stderr, "serverd:", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	svc := server.New(server.Config{
		Workers:           *workers,
		SweepWorkers:      *sweepWorkers,
		CacheEntries:      *cacheEntries,
		MaxRanks:          *maxRanks,
		MaxGoroutineRanks: *maxGoroutineRanks,
		MaxWork:           *maxWork,
		Timeout:           *timeout,
		Logger:            logger,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("serverd listening", "addr", *addr, "timeout", *timeout)

	select {
	case err := <-errCh:
		logger.Error("listener failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("shutting down", "drain", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("shutdown", "err", err)
	}
	// Abort anything the drain window did not flush, then release the
	// simulator's parked rank workers.
	svc.Close()
	released := mpi.DrainIdleWorkers()
	logger.Info("stopped", "rank_workers_released", released)
}
