// Command linkcheck validates the repository's Markdown documentation
// offline: every relative link must point at an existing file, and
// every intra-document anchor at a real heading (GitHub slug rules).
// External http(s) links are listed but not fetched — CI stays
// hermetic. The report doubles as the docs-touched artifact the CI
// docs job uploads: one line per document with its link inventory.
//
// Usage:
//
//	go run ./cmd/linkcheck [-root .] [-out linkcheck.txt] [-skip PAPERS.md]
//
// Machine-imported documents (the PAPERS.md retrieval dump references
// figure images that were never part of the repository) are listed but
// exempt from breakage via -skip. Exit status 1 when any non-exempt
// relative link or anchor is broken.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// mdLink matches inline Markdown links [text](target); images share
// the syntax with a leading bang, which the scan treats identically.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// heading matches ATX headings, whose slugs anchors resolve against.
var heading = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*$`)

// fencedBlock matches ``` fenced code blocks, which are prose to the
// renderer: link-shaped code text inside them must not be validated.
var fencedBlock = regexp.MustCompile("(?ms)^\\s*```.*?^\\s*```\\s*$")

// codeSpan matches inline `code` spans for the same reason.
var codeSpan = regexp.MustCompile("`[^`\n]*`")

// stripCode removes fenced blocks and inline code spans before the
// link and heading scans.
func stripCode(text string) string {
	return codeSpan.ReplaceAllString(fencedBlock.ReplaceAllString(text, ""), "")
}

// slugStrip drops everything GitHub's anchor slugger drops.
var slugStrip = regexp.MustCompile(`[^a-z0-9 \-]`)

// slugify reproduces GitHub's heading-to-anchor rule: lowercase, strip
// punctuation, spaces to hyphens.
func slugify(h string) string {
	s := strings.ToLower(strings.TrimSpace(h))
	s = slugStrip.ReplaceAllString(s, "")
	return strings.ReplaceAll(s, " ", "-")
}

// anchorsOf collects a document's heading anchors with GitHub's
// duplicate disambiguation: the second "Example" heading anchors as
// example-1, the third as example-2, and so on.
func anchorsOf(text string) map[string]bool {
	anchors := map[string]bool{}
	seen := map[string]int{}
	for _, m := range heading.FindAllStringSubmatch(text, -1) {
		slug := slugify(m[1])
		if n := seen[slug]; n > 0 {
			anchors[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			anchors[slug] = true
		}
		seen[slug]++
	}
	return anchors
}

// doc is one scanned Markdown file.
type doc struct {
	path     string
	links    []string
	external int
	broken   []string
}

func main() {
	root := flag.String("root", ".", "repository root to scan")
	out := flag.String("out", "", "also write the report to this path")
	skip := flag.String("skip", "PAPERS.md", "comma-separated machine-imported files exempt from breakage")
	flag.Parse()

	exempt := map[string]bool{}
	for _, s := range strings.Split(*skip, ",") {
		if s = strings.TrimSpace(s); s != "" {
			exempt[s] = true
		}
	}

	docs, err := scan(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "linkcheck:", err)
		os.Exit(1)
	}

	var report strings.Builder
	broken := 0
	for _, d := range docs {
		status := "ok"
		if len(d.broken) > 0 && exempt[filepath.Base(d.path)] {
			status = fmt.Sprintf("skipped (%d unresolved, machine-imported)", len(d.broken))
			d.broken = nil
		}
		if len(d.broken) > 0 {
			status = fmt.Sprintf("BROKEN (%d)", len(d.broken))
			broken += len(d.broken)
		}
		fmt.Fprintf(&report, "%-16s %3d links (%d external)  %s\n",
			d.path, len(d.links), d.external, status)
		for _, b := range d.broken {
			fmt.Fprintf(&report, "    broken: %s\n", b)
		}
	}
	fmt.Print(report.String())
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(1)
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken links\n", broken)
		os.Exit(1)
	}
}

// scan walks root for Markdown files (skipping dot-directories) and
// validates each one's links.
func scan(root string) ([]doc, error) {
	var paths []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		name := info.Name()
		if info.IsDir() {
			if strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(strings.ToLower(name), ".md") {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)

	docs := make([]doc, 0, len(paths))
	for _, path := range paths {
		d, err := checkFile(root, path)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, path)
		if err == nil {
			d.path = rel
		}
		docs = append(docs, d)
	}
	return docs, nil
}

// checkFile validates one document's links against the filesystem and
// its own headings.
func checkFile(root, path string) (doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return doc{}, err
	}
	text := stripCode(string(data))
	anchors := anchorsOf(text)

	d := doc{path: path}
	for _, m := range mdLink.FindAllStringSubmatch(text, -1) {
		target := m[1]
		d.links = append(d.links, target)
		switch {
		case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"),
			strings.HasPrefix(target, "mailto:"):
			d.external++
		case strings.HasPrefix(target, "#"):
			if !anchors[strings.TrimPrefix(target, "#")] {
				d.broken = append(d.broken, target)
			}
		default:
			file, frag, _ := strings.Cut(target, "#")
			dest := filepath.Join(filepath.Dir(path), file)
			if _, err := os.Stat(dest); err != nil {
				d.broken = append(d.broken, target)
				continue
			}
			if frag != "" && strings.HasSuffix(strings.ToLower(file), ".md") {
				destData, err := os.ReadFile(dest)
				if err != nil {
					d.broken = append(d.broken, target)
					continue
				}
				if !anchorsOf(stripCode(string(destData)))[frag] {
					d.broken = append(d.broken, target)
				}
			}
		}
	}
	return d, nil
}
