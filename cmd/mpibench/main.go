// Command mpibench runs the micro-benchmark experiments of the paper
// (Figs. 7-10): Hy_Allgather vs the SMP-aware pure-MPI Allgather on the
// simulated Cray XC40 (Cray MPI) and NEC (OpenMPI) clusters.
//
// Usage:
//
//	mpibench -fig 7            # one figure
//	mpibench -fig all          # every micro figure
//	mpibench -fine             # full 2^0..2^15 element grid
//	mpibench -nodes 8 -ppn 4 -elems 1024 -machine hazelhen-cray
//	                           # free-form single measurement
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/hybrid"
	"repro/internal/mpi"
	"repro/internal/sim"
	// Blank import: installs the REPRO_COLL_TUNING environment
	// compatibility shim (the tuning grammar lives in internal/spec).
	_ "repro/internal/spec"
)

func main() {
	fig := flag.String("fig", "", "figure to reproduce: 7, 8, 9, 10 or all")
	fine := flag.Bool("fine", false, "full power-of-two element sweep")
	iters := flag.Int("iters", 0, "timed iterations per point (default 5)")
	nodes := flag.Int("nodes", 4, "free-form: number of nodes")
	ppn := flag.Int("ppn", 24, "free-form: ranks per node")
	elems := flag.Int("elems", 1024, "free-form: elements of double precision per rank")
	machine := flag.String("machine", "hazelhen-cray", "free-form: machine profile")
	sync := flag.String("sync", "barrier", "hybrid sync flavor: barrier, p2p, sharedflags")
	trace := flag.Bool("trace", false, "free-form: print event-trace statistics of the hybrid op")
	flag.Parse()

	if *fig != "" {
		if err := runFigures(*fig, bench.FigOpts{Fine: *fine, Iters: *iters}); err != nil {
			fatal(err)
		}
		return
	}
	if err := runFreeForm(*machine, *nodes, *ppn, *elems, *iters, *sync); err != nil {
		fatal(err)
	}
	if *trace {
		if err := runTraced(*machine, *nodes, *ppn, *elems, *sync); err != nil {
			fatal(err)
		}
	}
}

// runTraced repeats the hybrid measurement once with event tracing on
// and prints the aggregate statistics (message counts and bytes).
func runTraced(machine string, nodes, ppn, elems int, syncName string) error {
	mk := sim.Profiles()[machine]
	syncMode, err := parseSyncMode(syncName)
	if err != nil {
		return err
	}
	topo, err := sim.Uniform(nodes, ppn)
	if err != nil {
		return err
	}
	tr := sim.NewTracer()
	w, err := mpi.NewWorld(mk(), topo, mpi.WithTracer(tr))
	if err != nil {
		return err
	}
	err = w.Run(func(p *mpi.Proc) error {
		ctx, err := hybrid.New(p.CommWorld(), hybrid.WithSync(syncMode))
		if err != nil {
			return err
		}
		a, err := ctx.NewAllgatherer(8 * elems)
		if err != nil {
			return err
		}
		return a.Allgather()
	})
	if err != nil {
		return err
	}
	fmt.Println("\nevent trace of one Hy_Allgather:")
	return tr.Stats().Fprint(os.Stdout)
}

func runFigures(which string, o bench.FigOpts) error {
	emit := func(t *bench.Table, err error) error {
		if err != nil {
			return err
		}
		return t.Fprint(os.Stdout)
	}
	emitAll := func(ts []*bench.Table, err error) error {
		if err != nil {
			return err
		}
		for _, t := range ts {
			if err := t.Fprint(os.Stdout); err != nil {
				return err
			}
		}
		return nil
	}
	switch which {
	case "7":
		return emit(bench.Fig7(o))
	case "8":
		return emitAll(bench.Fig8(o))
	case "9":
		return emitAll(bench.Fig9(o))
	case "10":
		return emit(bench.Fig10(o))
	case "all":
		for _, f := range []string{"7", "8", "9", "10"} {
			if err := runFigures(f, o); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown figure %q (want 7, 8, 9, 10 or all)", which)
	}
}

func runFreeForm(machine string, nodes, ppn, elems, iters int, syncName string) error {
	mk, ok := sim.Profiles()[machine]
	if !ok {
		return fmt.Errorf("unknown machine %q (profiles: hazelhen-cray, vulcan-openmpi, laptop)", machine)
	}
	syncMode, err := parseSync(syncName)
	if err != nil {
		return err
	}
	model := mk()
	shape := make([]int, nodes)
	for i := range shape {
		shape[i] = ppn
	}
	o := bench.MicroOpts{Iters: iters, Sync: syncMode}
	hy, err := bench.HyAllgatherLatency(model, shape, 8*elems, o)
	if err != nil {
		return err
	}
	pure, err := bench.PureAllgatherLatency(model, shape, 8*elems, o)
	if err != nil {
		return err
	}
	fmt.Printf("machine=%s nodes=%d ppn=%d elems=%d sync=%s\n", machine, nodes, ppn, elems, syncName)
	fmt.Printf("Hy_Allgather: %10.2f us\n", hy.Us())
	fmt.Printf("Allgather:    %10.2f us\n", pure.Us())
	fmt.Printf("ratio:        %10.2f\n", float64(pure)/float64(hy))
	return nil
}

func parseSync(s string) (m syncMode, err error) {
	return parseSyncMode(s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpibench:", err)
	os.Exit(1)
}
