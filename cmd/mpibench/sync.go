package main

import (
	"fmt"

	"repro/internal/hybrid"
)

type syncMode = hybrid.SyncMode

// parseSyncMode maps the -sync flag to a hybrid synchronization flavor.
func parseSyncMode(s string) (hybrid.SyncMode, error) {
	switch s {
	case "barrier", "":
		return hybrid.SyncBarrier, nil
	case "p2p":
		return hybrid.SyncP2P, nil
	case "sharedflags", "flags":
		return hybrid.SyncSharedFlags, nil
	default:
		return 0, fmt.Errorf("unknown sync flavor %q (want barrier, p2p, sharedflags)", s)
	}
}
