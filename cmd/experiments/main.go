// Command experiments regenerates every table and figure of the paper's
// evaluation section (Figs. 7-12) in one run, writing the series to
// stdout (and optionally a file). This is the one-button reproduction
// behind EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/bench"
	// Blank import: installs the REPRO_COLL_TUNING environment
	// compatibility shim (the tuning grammar lives in internal/spec).
	_ "repro/internal/spec"
)

func main() {
	out := flag.String("o", "", "also write the report to this file")
	fine := flag.Bool("fine", false, "full power-of-two element sweeps (slower)")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	o := bench.FigOpts{Fine: *fine}
	start := time.Now()
	fmt.Fprintln(w, "Reproduction of Zhou, Gracia, Schneider (ICPP'19):")
	fmt.Fprintln(w, "\"MPI Collectives for Multi-core Clusters: Optimized Performance of the Hybrid MPI+MPI Parallel Codes\"")
	fmt.Fprintln(w, "All times are deterministic virtual times on the simulated clusters (see DESIGN.md).")

	steps := []struct {
		name string
		run  func() error
	}{
		{"Fig 7", func() error { t, err := bench.Fig7(o); return one(w, t, err) }},
		{"Fig 8", func() error { ts, err := bench.Fig8(o); return many(w, ts, err) }},
		{"Fig 9", func() error { ts, err := bench.Fig9(o); return many(w, ts, err) }},
		{"Fig 10", func() error { t, err := bench.Fig10(o); return one(w, t, err) }},
		{"Fig 11", func() error { ts, err := bench.Fig11(o); return many(w, ts, err) }},
		{"Fig 12", func() error { t, err := bench.Fig12(o); return one(w, t, err) }},
	}
	for _, s := range steps {
		fmt.Fprintf(os.Stderr, "[experiments] %s...\n", s.name)
		if err := s.run(); err != nil {
			fatal(fmt.Errorf("%s: %w", s.name, err))
		}
	}
	fmt.Fprintf(w, "\nAll figures regenerated in %.1fs wall time.\n", time.Since(start).Seconds())
}

func one(w io.Writer, t *bench.Table, err error) error {
	if err != nil {
		return err
	}
	return t.Fprint(w)
}

func many(w io.Writer, ts []*bench.Table, err error) error {
	if err != nil {
		return err
	}
	for _, t := range ts {
		if err := t.Fprint(w); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
