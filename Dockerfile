# Container image for the serverd what-if daemon. Two stages: a Go
# builder and a minimal runtime. All daemon configuration flows
# through REPRO_* environment variables (each maps to a serverd flag;
# see API.md), so the image needs no wrapper script or command-line
# surgery — `docker run -e REPRO_WORKERS=8 ...` is the whole story.
FROM golang:1.24-alpine AS build
WORKDIR /src
# The module has no external dependencies (go.mod only pins the Go
# version), so the source tree is the entire build context.
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags="-s -w" -o /out/serverd ./cmd/serverd

FROM alpine:3.20
RUN adduser -D -H repro
COPY --from=build /out/serverd /usr/local/bin/serverd
USER repro
EXPOSE 8080
# Defaults mirror the flag defaults; override per deployment.
ENV REPRO_ADDR=:8080
HEALTHCHECK --interval=15s --timeout=3s --start-period=5s \
  CMD wget -q -O /dev/null http://127.0.0.1:8080/healthz || exit 1
ENTRYPOINT ["/usr/local/bin/serverd"]
